#include "exec/fragment_executor.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace gqp {
namespace {

std::string ProducerKey(const SubplanId& id) { return id.ToString(); }

}  // namespace

FragmentExecutor::FragmentExecutor(MessageBus* bus, GridNode* node,
                                   Network* network,
                                   FragmentInstancePlan plan,
                                   TablePtr scan_table)
    : GridService(bus, node->id(), plan.id.ToString()),
      node_(node),
      network_(network),
      plan_(std::move(plan)),
      scan_table_(std::move(scan_table)) {}

FragmentExecutor::~FragmentExecutor() = default;

Status FragmentExecutor::Prepare() {
  GQP_RETURN_IF_ERROR(ValidateInstancePlan(plan_, scan_table_.get()));
  epoch_guard_.Advance(plan_.coordinator_epoch);

  auto send_to = [this](const Address& to, PayloadPtr payload) {
    return SendTo(to, std::move(payload));
  };
  auto fail = [this](const Status& s) { Fail(s); };

  driver_ = std::make_unique<OperatorDriver>(
      node_, &plan_, &stats_, OperatorDriver::Hooks{send_to, fail});
  GQP_RETURN_IF_ERROR(driver_->BuildAndOpen());

  ingress_ = std::make_unique<IngressManager>();
  ingress_->set_epoch_guard(&epoch_guard_);
  queues_ = std::make_unique<PortQueueManager>(
      node_, simulator(), &plan_.config, plan_.id, &plan_.adaptivity, &stats_,
      PortQueueManager::Hooks{
          send_to,
          [this](int port, const std::string& key) {
            return ingress_->Fenced(port, key);
          }});
  state_ = std::make_unique<StateManager>(node_, &plan_.config, plan_.id,
                                          &stats_,
                                          StateManager::Hooks{send_to, fail});
  state_->set_epoch_guard(&epoch_guard_);
  for (const InputWiring& wiring : plan_.inputs) {
    ingress_->AddPort(wiring.num_producers);
    queues_->AddPort(wiring.num_producers);
    state_->AddPort();
  }

  if (plan_.output.has_value()) {
    egress_ = std::make_unique<EgressAdapter>(
        node_, network_, &plan_, &stats_,
        EgressAdapter::Hooks{send_to,
                             [this](const std::vector<uint64_t>& seqs) {
                               state_->OnOutputsAcked(seqs, finished_);
                             },
                             fail});
    egress_->set_epoch_guard(&epoch_guard_);
    GQP_RETURN_IF_ERROR(egress_->Open());
  }

  return Start();  // register the service endpoint
}

Status FragmentExecutor::Begin() {
  if (began_) return Status::OK();
  began_ = true;
  idle_since_ = simulator()->Now();
  idle_tracking_ = true;
  MaybeProcess();
  return Status::OK();
}

void FragmentExecutor::Fail(const Status& status) {
  if (exec_status_.ok()) exec_status_ = status;
  GQP_LOG_ERROR << "fragment " << plan_.id.ToString()
                << " failed: " << status.ToString();
}

// ---- message dispatch ----------------------------------------------------

void FragmentExecutor::HandleMessage(const Message& msg) {
  // A released instance no longer participates: the retried incarnation of
  // its query owns fresh instance keys, so anything still addressed here
  // is stale traffic of the old incarnation.
  if (abandoned_) return;
  if (PayloadAs<BeginPayload>(msg.payload) != nullptr) {
    const Status s = Begin();
    if (!s.ok()) Fail(s);
    return;
  }
  if (const auto* batch = PayloadAs<TupleBatchPayload>(msg.payload)) {
    return OnTupleBatch(msg, *batch);
  }
  if (const auto* eos = PayloadAs<EosPayload>(msg.payload)) {
    return OnEos(*eos);
  }
  if (const auto* lost = PayloadAs<ProducerLostPayload>(msg.payload)) {
    return OnProducerLost(*lost);
  }
  if (const auto* lost = PayloadAs<ConsumerLostPayload>(msg.payload)) {
    if (egress_ != nullptr && egress_->HandleConsumerLost(*lost)) {
      MaybeProcess();
      CheckCompletion();
    }
    return;
  }
  if (const auto* ack = PayloadAs<AckPayload>(msg.payload)) {
    if (ExchangeProducer* producer = mutable_producer()) {
      producer->OnAck(*ack);
      // The ack may have drained the recovery log: retained inputs become
      // releasable only once every output is durable downstream.
      MaybeAckRetained();
    }
    return;
  }
  if (const auto* grant = PayloadAs<CreditGrantPayload>(msg.payload)) {
    ExchangeProducer* producer = mutable_producer();
    if (producer != nullptr && producer->OnCreditGrant(*grant)) {
      MaybeProcess();  // headroom may be back: re-probe the driver
    }
    return;
  }
  if (const auto* redistribute =
          PayloadAs<RedistributeRequestPayload>(msg.payload)) {
    if (egress_ == nullptr) {
      GQP_LOG_WARN << "redistribute request at fragment without an output";
    } else {
      egress_->HandleRedistribute(*redistribute);
    }
    return;
  }
  if (PayloadAs<StateMoveRequestPayload>(msg.payload) != nullptr ||
      PayloadAs<RestoreCompletePayload>(msg.payload) != nullptr) {
    // Defer while a tuple is mid-processing, and keep arrival order: a
    // RestoreComplete must never overtake the StateMoveRequest that set
    // up the buckets it clears.
    if (processing_ || !deferred_state_moves_.empty()) {
      deferred_state_moves_.push_back(msg);
    } else {
      DispatchStateMove(msg);
    }
    return;
  }
  if (const auto* reply = PayloadAs<StateMoveReplyPayload>(msg.payload)) {
    if (egress_ != nullptr) egress_->HandleStateMoveReply(*reply);
    return;
  }
  if (const auto* progress = PayloadAs<ProgressRequestPayload>(msg.payload)) {
    const ExchangeProducer* p = producer();
    const Status s = SendTo(
        msg.from,
        std::make_shared<ProgressReplyPayload>(
            progress->round(), plan_.id,
            p != nullptr ? p->ProgressFraction() : 1.0,
            p != nullptr ? p->eos_sent() : true,
            p != nullptr ? p->log_size() : 0));
    if (!s.ok()) Fail(s);
    return;
  }
  if (PayloadAs<CompletionGrantPayload>(msg.payload) != nullptr) {
    return OnCompletionGrant();
  }
  GQP_LOG_DEBUG << "fragment " << plan_.id.ToString()
                << ": unhandled payload "
                << (msg.payload ? msg.payload->TypeName() : "null");
}

void FragmentExecutor::DispatchStateMove(const Message& msg) {
  const bool stateful = plan_.fragment.Stateful();
  if (const auto* move = PayloadAs<StateMoveRequestPayload>(msg.payload)) {
    const int port = move->consumer_port();
    if (!ingress_->ValidPort(port)) {
      return Fail(Status::OutOfRange("StateMoveRequest for invalid port"));
    }
    const std::string key = ProducerKey(move->producer());
    // Fence: a round opened by an already-lost producer would stay open
    // with no ProducerLost left to clean it up, leaving the fragment
    // unfinishable. Ignore the stale request entirely.
    if (ingress_->Fenced(port, key)) return;
    TrackProducer(port, move->producer(), msg.from, move->exchange_id());
    state_->ApplyStateMove(*move, key, msg.from, stateful, queues_.get(),
                           driver_.get());
  } else if (const auto* restore =
                 PayloadAs<RestoreCompletePayload>(msg.payload)) {
    const int port = restore->consumer_port();
    const std::string key = ProducerKey(restore->producer());
    // Fence stale markers too: a lost producer's rounds were already
    // abandoned in OnProducerLost.
    if (ingress_->ValidPort(port) && ingress_->Fenced(port, key)) return;
    state_->ApplyRestoreComplete(*restore, key, stateful, queues_.get());
  }
  MaybeProcess();
  CheckCompletion();
}

void FragmentExecutor::TrackProducer(int port, const SubplanId& producer,
                                     const Address& address,
                                     int exchange_id) {
  // Both registrations run at every call site with the same key: the two
  // producer maps then see the identical insertion sequence as the
  // pre-split executor's single map, keeping iteration-order-sensitive
  // paths (retained-ack sweep, completion flush) on the golden order.
  const std::string key = ProducerKey(producer);
  queues_->RegisterProducer(port, key, address, exchange_id);
  state_->RegisterProducer(port, key, address, exchange_id);
}

void FragmentExecutor::OnTupleBatch(const Message& msg,
                                    const TupleBatchPayload& batch) {
  const int port = batch.consumer_port();
  if (!ingress_->ValidPort(port)) {
    Fail(Status::OutOfRange(StrCat("tuple batch for invalid port ", port)));
    return;
  }
  const std::string key = ProducerKey(batch.producer());
  // Epoch fence: once a producer is reported lost, recovery owns its
  // rows. Count them received (conservation ledger) but never process.
  if (ingress_->Fenced(port, key)) {
    stats_.tuples_received += batch.tuples().size();
    stats_.tuples_fenced += batch.tuples().size();
    return;
  }
  TrackProducer(port, batch.producer(), msg.from, batch.exchange_id());
  stats_.tuples_received += batch.tuples().size();
  queues_->EnqueueBatch(port, key, batch);
  // New work may re-open a fragment that had offered completion — or one
  // that already finished: a recovery resend may arrive post-completion.
  // Resume, reprocess, and finish (incl. EOS + completion report) again.
  if (finished_) {
    finished_ = false;
    if (ExchangeProducer* producer = mutable_producer()) producer->Reopen();
  }
  completion_offered_ = false;
  MaybeProcess();
}

void FragmentExecutor::OnEos(const EosPayload& eos) {
  const int port = eos.consumer_port();
  if (!ingress_->ValidPort(port)) {
    Fail(Status::OutOfRange(StrCat("EOS for invalid port ", port)));
    return;
  }
  ingress_->MarkEos(port, ProducerKey(eos.producer()));
  MaybeProcess();
  CheckCompletion();
}

void FragmentExecutor::OnProducerLost(const ProducerLostPayload& lost) {
  const int port = lost.consumer_port();
  if (!ingress_->ValidPort(port)) return;
  // Keep whatever the crashed producer already delivered (those outputs
  // are valid); just stop waiting for its end-of-stream marker, and
  // abandon its open rounds (no RestoreComplete will ever arrive).
  const std::string key = ProducerKey(lost.producer());
  if (!ingress_->MarkLostIfCurrent(port, key, lost.coordinator_epoch())) {
    return;  // stale-epoch command of a deposed coordinator (D14)
  }
  state_->AbandonProducer(key);
  MaybeProcess();
  CheckCompletion();
}

// ---- driver ----------------------------------------------------------------

void FragmentExecutor::GoIdle() {
  // Going idle: ship sub-threshold credit batches now — an upstream
  // producer blocked on them has no other way to make progress. A blocked
  // chain thus always unblocks bottom-up from the root.
  queues_->FlushCreditGrants();
  if (!idle_tracking_) {
    idle_tracking_ = true;
    idle_since_ = simulator()->Now();
  }
}

void FragmentExecutor::MaybeProcess() {
  if (abandoned_) return;
  if (!began_ || processing_ || finished_ || dispatching_control_) return;

  // Flow-control gate (D11): with a saturated output link, starting
  // another input tuple would only pile more bytes onto the starved
  // consumer. Park the driver; the pending CreditGrant re-probes it.
  if (egress_ != nullptr && egress_->BlockedOnCredit()) return GoIdle();

  if (plan_.fragment.IsScanLeaf()) {
    if (scan_row_ < scan_table_->num_rows()) {
      processing_ = true;
      if (plan_.config.vectorized_enabled) {
        ProcessScanBatch();
      } else {
        ProcessScanRow();
      }
    } else {
      CheckCompletion();
    }
    return;
  }

  const int port = queues_->PickRunnablePort(
      [this](int q) { return ingress_->EosComplete(q); });
  if (port < 0) return GoIdle();
  if (idle_tracking_) {
    driver_->AccumulateWait(simulator()->Now() - idle_since_);
    idle_tracking_ = false;
  }
  processing_ = true;
  if (plan_.config.vectorized_enabled) {
    ProcessQueuedBatch(port);
  } else {
    ProcessQueuedTuple(port);
  }
}

void FragmentExecutor::ProcessScanRow() {
  const Tuple& row = scan_table_->row(scan_row_++);
  const Status s = driver_->RunScanRow(row);
  if (!s.ok()) {
    Fail(s);
    processing_ = false;
    return;
  }
  ++stats_.tuples_processed;
  node_->SubmitComposite(driver_->ctx()->charges, [this](double actual_ms) {
    if (abandoned_) return;
    driver_->AccumulateTupleCost(actual_ms);
    (void)DeliverOutputs(driver_->ctx());
    driver_->MaybeEmitM1(producer() != nullptr);
    processing_ = false;
    MaybeProcess();
  });
}

bool FragmentExecutor::BucketBlocked(int bucket) const {
  return !state_->build_recovery_empty() ||
         state_->AwaitingRestore(bucket) || state_->Frozen(bucket);
}

void FragmentExecutor::ProcessQueuedTuple(int port) {
  // Park probe tuples of in-move buckets (stateful fragments only).
  if (port > 0) {
    queues_->ParkBlocked(port,
                         [this](int bucket) { return BucketBlocked(bucket); });
  }
  if (queues_->QueueEmpty(port)) {
    processing_ = false;
    MaybeProcess();
    return;
  }

  QueuedTuple qt = queues_->PopFront(port);
  // The tuple leaves the bounded queue here; its bytes stop counting
  // against the producer's window (operator state is not budgeted).
  queues_->ReleaseCredit(port, qt.producer_key, qt.wire_bytes);

  const Status s = driver_->RunTuple(port, qt.rt.tuple, qt.rt.bucket);
  if (!s.ok()) {
    Fail(s);
    processing_ = false;
    return;
  }
  const bool retained = driver_->ctx()->retained;
  ++stats_.tuples_processed;

  node_->SubmitComposite(
      driver_->ctx()->charges,
      [this, port, qt = std::move(qt), retained](double actual_ms) {
        if (abandoned_) return;
        driver_->AccumulateTupleCost(actual_ms);
        const std::vector<uint64_t> output_seqs =
            DeliverOutputs(driver_->ctx());
        state_->RecordProcessed(port, qt.producer_key, qt.rt.seq,
                                qt.rt.bucket, retained, output_seqs,
                                producer() != nullptr, finished_);
        processing_ = false;
        // Handle state moves that raced with this tuple: its seq is now
        // in the processed set, so the purge/reply stay consistent. The
        // driver stays suppressed until every deferred control message is
        // dispatched — otherwise the first handler would start new tuple
        // work and later purges/replies would race with it again.
        dispatching_control_ = true;
        std::vector<Message> deferred;
        deferred.swap(deferred_state_moves_);
        for (const Message& m : deferred) DispatchStateMove(m);
        dispatching_control_ = false;
        driver_->MaybeEmitM1(producer() != nullptr);
        MaybeProcess();
        CheckCompletion();
      });
}

void FragmentExecutor::ProcessScanBatch() {
  const size_t remaining = scan_table_->num_rows() - scan_row_;
  const size_t batch = std::max<size_t>(plan_.config.vector_batch_size, 1);
  const size_t n = remaining < batch ? remaining : batch;
  const Status s = driver_->RunScanBatch(*scan_table_, scan_row_, n);
  scan_row_ += n;
  if (!s.ok()) {
    Fail(s);
    processing_ = false;
    return;
  }
  stats_.tuples_processed += n;
  node_->SubmitComposite(driver_->ctx()->charges, [this, n](double actual_ms) {
    if (abandoned_) return;
    driver_->AccumulateBatchCost(actual_ms, n);
    (void)DeliverOutputs(driver_->ctx());
    driver_->MaybeEmitM1(producer() != nullptr);
    processing_ = false;
    MaybeProcess();
  });
}

void FragmentExecutor::ProcessQueuedBatch(int port) {
  // Pop up to a batch of runnable tuples. Parking is re-checked before
  // every pop: the front may turn blocked mid-batch (a blocked tuple must
  // never ride along with runnable ones — bucket state cannot change
  // while we pop, but the *front* changes with each pop).
  const size_t batch = std::max<size_t>(plan_.config.vector_batch_size, 1);
  std::vector<QueuedTuple> popped;
  popped.reserve(batch);
  while (popped.size() < batch) {
    if (port > 0) {
      queues_->ParkBlocked(
          port, [this](int bucket) { return BucketBlocked(bucket); });
    }
    if (queues_->QueueEmpty(port)) break;
    popped.push_back(queues_->PopFront(port));
    const QueuedTuple& qt = popped.back();
    queues_->ReleaseCredit(port, qt.producer_key, qt.wire_bytes);
  }
  if (popped.empty()) {
    processing_ = false;
    MaybeProcess();
    return;
  }

  const size_t n = popped.size();
  TupleBatch in;
  in.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    in.Append(popped[i].rt.tuple, popped[i].rt.bucket,
              static_cast<uint32_t>(i));
  }
  const Status s = driver_->RunBatch(port, &in);
  if (!s.ok()) {
    Fail(s);
    processing_ = false;
    return;
  }
  stats_.tuples_processed += n;

  node_->SubmitComposite(
      driver_->ctx()->charges,
      [this, port, popped = std::move(popped), n](double actual_ms) {
        if (abandoned_) return;
        driver_->AccumulateBatchCost(actual_ms, n);
        ExecContext* ctx = driver_->ctx();
        // DeliverOutputs clears ctx->out but leaves out_origin: seqs[i]
        // belongs to the input row out_origin[i] (origins are
        // non-decreasing — every operator emits in input-row order).
        const std::vector<uint64_t> output_seqs = DeliverOutputs(ctx);
        size_t next_out = 0;
        std::vector<uint64_t> row_seqs;
        for (size_t i = 0; i < n; ++i) {
          row_seqs.clear();
          while (next_out < output_seqs.size() &&
                 ctx->out_origin[next_out] == i) {
            row_seqs.push_back(output_seqs[next_out]);
            ++next_out;
          }
          state_->RecordProcessed(port, popped[i].producer_key,
                                  popped[i].rt.seq, popped[i].rt.bucket,
                                  ctx->row_retained[i] != 0, row_seqs,
                                  producer() != nullptr, finished_);
        }
        processing_ = false;
        // Same deferred-control drain as the scalar path: state moves that
        // raced with this batch see every popped seq in the processed set.
        dispatching_control_ = true;
        std::vector<Message> deferred;
        deferred.swap(deferred_state_moves_);
        for (const Message& m : deferred) DispatchStateMove(m);
        dispatching_control_ = false;
        driver_->MaybeEmitM1(producer() != nullptr);
        MaybeProcess();
        CheckCompletion();
      });
}

std::vector<uint64_t> FragmentExecutor::DeliverOutputs(ExecContext* ctx) {
  stats_.tuples_emitted += ctx->out.size();
  if (egress_ == nullptr) {
    ctx->out.clear();
    return {};
  }
  return egress_->Deliver(&ctx->out);
}

void FragmentExecutor::MaybeAckRetained() {
  if (!finished_) return;
  // Outputs are durable once nothing remains in the recovery log (the
  // root has no producer: its outputs ARE the delivered result).
  if (producer() != nullptr && !producer()->log().empty()) return;
  state_->AckAllRetained();
}

// ---- completion ------------------------------------------------------------

std::string FragmentExecutor::DebugString() const {
  std::string out = StrCat(plan_.id.ToString(), ": began=", began_,
                           " finished=", finished_, " processing=",
                           processing_, " offered=", completion_offered_,
                           " dead=", node_->dead());
  if (plan_.fragment.IsScanLeaf()) {
    out += StrCat(" scan_row=", scan_row_, "/", scan_table_->num_rows());
  }
  for (size_t p = 0; p < plan_.inputs.size(); ++p) {
    const int port = static_cast<int>(p);
    out += StrCat(" port", p, "={queue=", queues_->queue_size(port),
                  " parked=", queues_->parked_size(port), " eos=",
                  ingress_->eos_count(port), "/",
                  ingress_->num_producers(port), " lost=",
                  ingress_->lost_count(port), " acks_pending=",
                  state_->AcksPendingTotal(port), "}");
  }
  if (state_ != nullptr) out += state_->DebugSuffix();
  if (producer() != nullptr) {
    out += StrCat(" producer={", producer()->DebugString(), "}");
  }
  if (!exec_status_.ok()) out += StrCat(" error=", exec_status_.ToString());
  return out;
}

bool FragmentExecutor::LocallyDrained() const {
  if (processing_) return false;
  if (plan_.fragment.IsScanLeaf()) {
    return scan_row_ >= scan_table_->num_rows();
  }
  return state_->quiescent() && ingress_->AllEosComplete() &&
         queues_->AllQueuesEmpty();
}

void FragmentExecutor::CheckCompletion() {
  if (finished_ || !began_ || !LocallyDrained()) return;

  // Partitioned consumers must confirm with the Responder that no
  // retrospective redistribution can still route work to them.
  const bool needs_handshake =
      plan_.adaptivity.enabled && plan_.fragment.partitioned &&
      !plan_.fragment.IsScanLeaf() &&
      plan_.adaptivity.responder.host != kInvalidHost;
  if (!needs_handshake) {
    FinishFragment();
    return;
  }
  if (completion_offered_) return;
  completion_offered_ = true;
  const Status s =
      SendTo(plan_.adaptivity.responder,
             std::make_shared<CompletionOfferPayload>(plan_.id));
  if (!s.ok()) Fail(s);
}

void FragmentExecutor::OnCompletionGrant() {
  if (finished_) return;
  if (!LocallyDrained()) {
    // In-flight resends arrived between our offer and the grant; drain
    // them and re-offer.
    completion_offered_ = false;
    MaybeProcess();
    return;
  }
  FinishFragment();
}

void FragmentExecutor::FinishFragment() {
  if (finished_) return;
  finished_ = true;

  driver_->FinishPorts(plan_.inputs.size());
  if (driver_->FinishChain()) {
    (void)DeliverOutputs(driver_->ctx());
  }

  // Drain remaining acknowledgments (the paper's "checkpoints are
  // returned ... when tuples are not needed any more"). Retained
  // (state-resident) tuples are NOT unneeded yet: MaybeAckRetained
  // releases them once the recovery log drains.
  state_->FlushAllAcks();

  if (ExchangeProducer* producer = mutable_producer()) {
    const Status s = producer->FinishInput();
    if (!s.ok()) Fail(s);
  }
  MaybeAckRetained();

  if (plan_.coordinator.host != kInvalidHost) {
    const Status s =
        SendTo(plan_.coordinator,
               std::make_shared<FragmentCompletePayload>(
                   plan_.id, stats_.tuples_processed, stats_.tuples_emitted));
    if (!s.ok()) Fail(s);
  }
}

}  // namespace gqp
