#include "exec/operator_driver.h"

#include "common/interner.h"
#include "common/logging.h"
#include "monitor/monitoring_events.h"

namespace gqp {

OperatorDriver::OperatorDriver(GridNode* node,
                               const FragmentInstancePlan* plan,
                               FragmentStats* stats, Hooks hooks)
    : node_(node),
      plan_(plan),
      fragment_(&plan->fragment),
      stats_(stats),
      hooks_(std::move(hooks)) {}

OperatorDriver::~OperatorDriver() = default;

Status OperatorDriver::BuildAndOpen() {
  const bool is_scan = fragment_->IsScanLeaf();
  if (is_scan) {
    const PhysOpDesc& scan_desc = fragment_->ops.front();
    scan_tag_ = InternString(scan_desc.cost_tag);
    scan_cost_ms_ = scan_desc.base_cost_ms;
  }
  const size_t first_op = is_scan ? 1 : 0;
  for (size_t i = first_op; i < fragment_->ops.size(); ++i) {
    GQP_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalOperator> op,
                         MakeOperator(fragment_->ops[i]));
    ops_.push_back(std::move(op));
  }
  for (size_t i = 0; i + 1 < ops_.size(); ++i) {
    ops_[i]->set_next(ops_[i + 1].get());
  }
  for (auto& op : ops_) {
    GQP_RETURN_IF_ERROR(op->Open(&ctx_));
  }
  return Status::OK();
}

Status OperatorDriver::RunScanRow(const Tuple& row) {
  ctx_.ResetForTuple();
  ctx_.Charge(scan_tag_, scan_cost_ms_);
  if (!ops_.empty()) {
    return ops_.front()->Process(0, row, -1, &ctx_);
  }
  ctx_.out.push_back(row);
  return Status::OK();
}

Status OperatorDriver::RunTuple(int port, const Tuple& tuple, int bucket) {
  ctx_.ResetForTuple();
  return ops_.front()->Process(port, tuple, bucket, &ctx_);
}

Status OperatorDriver::RunScanBatch(const Table& table, size_t start,
                                    size_t n) {
  ctx_.ResetForBatch(n);
  ctx_.ChargeN(scan_tag_, scan_cost_ms_, n);
  if (ops_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      ctx_.out.push_back(table.row(start + i));
      ctx_.out_origin.push_back(static_cast<uint32_t>(i));
    }
    return Status::OK();
  }
  scan_batch_.Clear();
  scan_batch_.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scan_batch_.Append(table.row(start + i), -1, static_cast<uint32_t>(i));
  }
  return RunChainBatch(0, &scan_batch_);
}

Status OperatorDriver::RunBatch(int port, TupleBatch* in) {
  ctx_.ResetForBatch(in->size());
  return RunChainBatch(port, in);
}

Status OperatorDriver::RunChainBatch(int port, TupleBatch* in) {
  TupleBatch* cur = in;
  TupleBatch* next = &scratch_a_;
  for (auto& op : ops_) {
    next->Clear();
    GQP_RETURN_IF_ERROR(op->ProcessBatch(port, cur, next, &ctx_));
    // Ping-pong: the consumed batch becomes the next stage's output
    // scratch (the caller's `in` is scratch to it as well).
    TupleBatch* spent = cur == in ? &scratch_b_ : cur;
    cur = next;
    next = spent;
    port = 0;
  }
  const size_t rows = cur->size();
  ctx_.out.reserve(ctx_.out.size() + rows);
  ctx_.out_origin.reserve(ctx_.out_origin.size() + rows);
  for (size_t i = 0; i < rows; ++i) {
    ctx_.out.push_back(cur->TakeTuple(i));
    ctx_.out_origin.push_back(cur->origin(i));
  }
  return Status::OK();
}

void OperatorDriver::FinishPorts(size_t num_ports) {
  for (size_t p = 0; p < num_ports; ++p) {
    for (auto& op : ops_) {
      const Status s = op->FinishPort(static_cast<int>(p), &ctx_);
      if (!s.ok()) hooks_.fail(s);
    }
  }
}

bool OperatorDriver::FinishChain() {
  ctx_.ResetForTuple();
  if (ops_.empty()) return false;
  const Status s = ops_.front()->Finish(&ctx_);
  if (!s.ok()) hooks_.fail(s);
  return true;
}

void OperatorDriver::PurgeBuckets(const std::vector<int>& buckets) {
  for (auto& op : ops_) op->PurgeBuckets(buckets);
}

OperatorDriver::M1Sample OperatorDriver::TakeM1(uint64_t tuples_processed,
                                                uint64_t tuples_emitted) {
  M1Sample sample;
  sample.cost_per_tuple_ms = m1_cost_ms_ / static_cast<double>(m1_tuples_);
  sample.wait_per_tuple_ms = m1_wait_ms_ / static_cast<double>(m1_tuples_);
  sample.selectivity = tuples_processed > 0
                           ? static_cast<double>(tuples_emitted) /
                                 static_cast<double>(tuples_processed)
                           : 1.0;
  m1_tuples_ = 0;
  m1_cost_ms_ = 0.0;
  m1_wait_ms_ = 0.0;
  return sample;
}

void OperatorDriver::MaybeEmitM1(bool has_producer) {
  if (!plan_->config.monitoring_enabled || plan_->config.m1_frequency == 0 ||
      plan_->adaptivity.med.host == kInvalidHost || !has_producer) {
    return;
  }
  if (m1_tuples_ < plan_->config.m1_frequency) return;
  const M1Sample sample =
      TakeM1(stats_->tuples_processed, stats_->tuples_emitted);
  ++stats_->m1_sent;
  node_->SubmitWork(kExchangeTag, plan_->config.monitor_emit_cost_ms,
                    nullptr);
  const Status s = hooks_.send_to(
      plan_->adaptivity.med,
      std::make_shared<M1Payload>(plan_->id, sample.cost_per_tuple_ms,
                                  sample.wait_per_tuple_ms,
                                  sample.selectivity,
                                  stats_->tuples_processed));
  if (!s.ok()) {
    GQP_LOG_WARN << "M1 emission failed: " << s.ToString();
  }
}

const std::vector<Tuple>& OperatorDriver::Results() const {
  static const std::vector<Tuple> kEmpty;
  for (const auto& op : ops_) {
    if (const auto* collect = dynamic_cast<const CollectOperator*>(op.get())) {
      return collect->results();
    }
  }
  return kEmpty;
}

const HashJoinOperator* OperatorDriver::FindHashJoin() const {
  for (const auto& op : ops_) {
    if (const auto* join = dynamic_cast<const HashJoinOperator*>(op.get())) {
      return join;
    }
  }
  return nullptr;
}

}  // namespace gqp
