// FragmentExecutor: one running instance of a plan fragment on a grid
// node, exposed as a GridService endpoint. It is the paper's query engine
// component of a (A)GQES, reduced to a composition root (DESIGN.md §D12)
// over five cohesive components:
//
//  - IngressManager: per-producer EOS tracking + epoch fencing;
//  - PortQueueManager: port queues, credit accounting, pressure episodes;
//  - OperatorDriver: operator-chain execution + cost charging + M1 loop;
//  - StateManager: processed/retained inputs, cascading acknowledgments,
//    the state-move/purge protocol;
//  - EgressAdapter: the ExchangeProducer and its monitoring wiring.
//
// The executor itself keeps only protocol orchestration: message
// dispatch, the two-phase tuple driver, the completion handshake, and
// the exact event ordering the golden traces pin down.

#ifndef GRIDQP_EXEC_FRAGMENT_EXECUTOR_H_
#define GRIDQP_EXEC_FRAGMENT_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/egress.h"
#include "exec/ingress.h"
#include "exec/instance_plan.h"
#include "exec/operator_driver.h"
#include "exec/port_queue_manager.h"
#include "exec/state_manager.h"
#include "rpc/service.h"
#include "storage/table.h"

namespace gqp {

/// \brief A deployed fragment instance.
class FragmentExecutor : public GridService {
 public:
  /// `scan_table` resolves the scan target on this host (null for
  /// non-scan fragments). The executor registers its endpoint under
  /// `plan.id.ToString()`.
  FragmentExecutor(MessageBus* bus, GridNode* node, Network* network,
                   FragmentInstancePlan plan, TablePtr scan_table);
  ~FragmentExecutor() override;

  /// Validates the plan, instantiates the components and registers the
  /// endpoint.
  Status Prepare();

  /// Begins execution (scan fragments start pumping; consumers wait for
  /// data). Idempotent.
  Status Begin();

  bool finished() const { return finished_; }
  const FragmentStats& stats() const { return stats_; }
  const ExchangeProducer* producer() const {
    return egress_ != nullptr ? egress_->producer() : nullptr;
  }
  const FragmentInstancePlan& plan() const { return plan_; }
  GridNode* node() const { return node_; }

  /// Results collected by a root fragment (empty otherwise).
  const std::vector<Tuple>& Results() const {
    static const std::vector<Tuple> kEmpty;
    return driver_ != nullptr ? driver_->Results() : kEmpty;
  }

  /// Introspection for tests: buckets currently awaiting build-state
  /// restoration / frozen after a local state purge.
  size_t awaiting_restore_count() const {
    return state_ != nullptr ? state_->awaiting_restore_count() : 0;
  }
  size_t frozen_lost_count() const {
    return state_ != nullptr ? state_->frozen_count() : 0;
  }
  /// Queued + parked tuples on one input port.
  size_t QueuedTuples(int port) const {
    return queues_ != nullptr ? queues_->QueuedTuples(port) : 0;
  }
  /// Seqs processed on a port, per producer key (tests verify that state
  /// moves never process a tuple at two consumers).
  std::unordered_map<std::string, std::vector<uint64_t>> ProcessedSeqs(
      int port) const {
    return state_ != nullptr
               ? state_->ProcessedSeqs(port)
               : std::unordered_map<std::string, std::vector<uint64_t>>{};
  }
  /// The fragment's hash join, if any (tests inspect its state).
  const HashJoinOperator* FindHashJoin() const {
    return driver_ != nullptr ? driver_->FindHashJoin() : nullptr;
  }

  /// First execution error encountered (simulation keeps running so that
  /// tests can inspect state; callers check this after completion).
  const Status& execution_status() const { return exec_status_; }

  /// Coordinator-epoch fence of this instance (D14). The GQES advances it
  /// when a new coordinator announces itself; the components drop
  /// commands stamped with older epochs.
  void AdvanceCoordinatorEpoch(uint64_t epoch) { epoch_guard_.Advance(epoch); }
  const CoordinatorEpochGuard& epoch_guard() const { return epoch_guard_; }

  /// Turns the instance inert after a coordinator-side release (D14):
  /// every further message is dropped and no new tuple work starts. The
  /// object must stay alive — node work items already in flight complete
  /// into it — so the owning GQES parks it instead of destroying it.
  void Abandon() { abandoned_ = true; }
  bool abandoned() const { return abandoned_; }

  /// One-line dump of the execution state (ports, EOS tracking, open
  /// state-move rounds, producer log) for stuck-query diagnostics.
  std::string DebugString() const;

 protected:
  void HandleMessage(const Message& msg) override;

 private:
  // --- message handlers -------------------------------------------------
  void OnTupleBatch(const Message& msg, const TupleBatchPayload& batch);
  void OnEos(const EosPayload& eos);
  void OnProducerLost(const ProducerLostPayload& lost);
  void OnCompletionGrant();
  /// Routes a (possibly deferred) StateMoveRequest/RestoreComplete:
  /// fences stale senders, registers the link, applies via StateManager.
  void DispatchStateMove(const Message& msg);

  // --- tuple driver ------------------------------------------------------
  void MaybeProcess();
  void ProcessScanRow();
  void ProcessQueuedTuple(int port);
  // Vectorized mode (DESIGN.md §D13): same two-phase shape, but one
  // composite work item covers a whole popped batch.
  void ProcessScanBatch();
  void ProcessQueuedBatch(int port);
  /// Flushes pending credit grants and starts idle-wait tracking.
  void GoIdle();
  /// Offers staged outputs to the producer; returns their seqs.
  std::vector<uint64_t> DeliverOutputs(ExecContext* ctx);
  /// Registers the producer link with queues + state (identical
  /// registration order keeps producer-map iteration aligned with the
  /// pre-split executor).
  void TrackProducer(int port, const SubplanId& producer,
                     const Address& address, int exchange_id);
  /// True while a probe tuple of `bucket` must stay parked.
  bool BucketBlocked(int bucket) const;
  /// Releases retained inputs once finished and the recovery log drained.
  void MaybeAckRetained();

  ExchangeProducer* mutable_producer() {
    return egress_ != nullptr ? egress_->producer() : nullptr;
  }

  // --- completion ---------------------------------------------------------
  bool LocallyDrained() const;
  void CheckCompletion();
  void FinishFragment();

  void Fail(const Status& status);

  GridNode* node_;
  Network* network_;
  FragmentInstancePlan plan_;
  TablePtr scan_table_;

  std::unique_ptr<OperatorDriver> driver_;
  std::unique_ptr<IngressManager> ingress_;
  std::unique_ptr<PortQueueManager> queues_;
  std::unique_ptr<StateManager> state_;
  std::unique_ptr<EgressAdapter> egress_;

  /// StateMoveRequests arriving while a tuple is mid-processing are
  /// deferred until the work item completes; otherwise the in-flight
  /// tuple would be missing from both the purge and the processed-set
  /// reply, and the producer would resend it (duplicating results).
  std::vector<Message> deferred_state_moves_;

  bool began_ = false;
  bool processing_ = false;
  /// True while deferred control messages are being dispatched; keeps the
  /// tuple driver quiescent so purges/replies never race with new work.
  bool dispatching_control_ = false;
  bool finished_ = false;
  bool completion_offered_ = false;
  /// Released by the coordinator (D14); inert but kept alive by the GQES.
  bool abandoned_ = false;
  size_t scan_row_ = 0;
  SimTime idle_since_ = 0.0;
  bool idle_tracking_ = false;

  CoordinatorEpochGuard epoch_guard_;
  FragmentStats stats_;
  Status exec_status_;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_FRAGMENT_EXECUTOR_H_
