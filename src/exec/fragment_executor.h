// FragmentExecutor: one running instance of a plan fragment on a grid
// node, exposed as a GridService endpoint. It is the paper's query engine
// component of a (A)GQES:
//
//  - scan leaves pump their table through the operator chain and into the
//    exchange producer "as fast as they can";
//  - partitioned evaluation fragments consume exchange inputs (port 0 is
//    drained before port 1, giving the classic two-phase hash join),
//    run the chain, acknowledge processed tuples, emit self-monitoring
//    M1/M2 events, and participate in the retrospective state-move
//    protocol (purging, parking and restoring partitions);
//  - the root fragment collects results and reports query completion.

#ifndef GRIDQP_EXEC_FRAGMENT_EXECUTOR_H_
#define GRIDQP_EXEC_FRAGMENT_EXECUTOR_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/exchange_producer.h"
#include "exec/operators.h"
#include "grid/node.h"
#include "rpc/service.h"
#include "storage/table.h"

namespace gqp {

/// Wiring of one input port.
struct InputWiring {
  ExchangeDesc desc;
  int num_producers = 1;
};

/// Adaptivity wiring of a fragment instance.
struct AdaptivityWiring {
  bool enabled = false;
  /// Local MonitoringEventDetector receiving raw M1/M2 events.
  Address med;
  /// The query's Responder (state-move outcomes + completion handshake).
  Address responder;
};

/// Everything a GQES needs to instantiate one fragment instance.
struct FragmentInstancePlan {
  SubplanId id;
  FragmentDesc fragment;
  std::vector<InputWiring> inputs;
  std::optional<OutputWiring> output;
  ExecConfig config;
  AdaptivityWiring adaptivity;
  /// Coordinator (GDQS) endpoint for completion notifications.
  Address coordinator;
};

/// Per-instance execution counters.
struct FragmentStats {
  /// Tuples delivered by upstream exchanges (includes resends).
  uint64_t tuples_received = 0;
  /// Tuples rejected because their producer was fenced: it was reported
  /// failed (possibly a false suspicion) and recovery reassigned its
  /// work, so late output from it must not contribute twice.
  uint64_t tuples_fenced = 0;
  uint64_t tuples_processed = 0;
  uint64_t tuples_emitted = 0;
  uint64_t tuples_discarded_in_moves = 0;
  uint64_t tuples_parked = 0;
  uint64_t m1_sent = 0;
  uint64_t m2_sent = 0;
  uint64_t acks_sent = 0;
  double busy_ms = 0.0;
  double idle_wait_ms = 0.0;
  size_t queue_high_watermark = 0;
  /// Peak number of tuples parked at once across all ports.
  size_t parked_peak = 0;
  // --- flow control (D11); all zero with it off -------------------------
  /// Peak bytes held (queued + parked) on any single input port.
  uint64_t queued_bytes_peak = 0;
  uint64_t credit_grants_sent = 0;
  uint64_t queue_pressure_events = 0;
};

/// \brief A deployed fragment instance.
class FragmentExecutor : public GridService {
 public:
  /// `tables` resolves scan targets on this host (null for non-scan
  /// fragments). The executor registers its endpoint under
  /// `plan.id.ToString()`.
  FragmentExecutor(MessageBus* bus, GridNode* node, Network* network,
                   FragmentInstancePlan plan, TablePtr scan_table);
  ~FragmentExecutor() override;

  /// Validates the plan, instantiates operators/producer and registers the
  /// endpoint.
  Status Prepare();

  /// Begins execution (scan fragments start pumping; consumers wait for
  /// data). Idempotent.
  Status Begin();

  bool finished() const { return finished_; }
  const FragmentStats& stats() const { return stats_; }
  const ExchangeProducer* producer() const { return producer_.get(); }
  const FragmentInstancePlan& plan() const { return plan_; }
  GridNode* node() const { return node_; }

  /// Results collected by a root fragment (empty otherwise).
  const std::vector<Tuple>& Results() const;

  /// Introspection for tests: buckets currently awaiting build-state
  /// restoration / frozen after a local state purge.
  size_t awaiting_restore_count() const { return awaiting_restore_.size(); }
  size_t frozen_lost_count() const { return frozen_lost_.size(); }
  /// Queued + parked tuples on one input port.
  size_t QueuedTuples(int port) const;
  /// Seqs processed on a port, per producer key (tests verify that state
  /// moves never process a tuple at two consumers).
  std::unordered_map<std::string, std::vector<uint64_t>> ProcessedSeqs(
      int port) const;
  /// The fragment's hash join, if any (tests inspect its state).
  const HashJoinOperator* FindHashJoin() const;

  /// First execution error encountered (simulation keeps running so that
  /// tests can inspect state; callers check this after completion).
  const Status& execution_status() const { return exec_status_; }

  /// One-line dump of the execution state (ports, EOS tracking, open
  /// state-move rounds, producer log) for stuck-query diagnostics.
  std::string DebugString() const;

 protected:
  void HandleMessage(const Message& msg) override;

 private:
  struct QueuedTuple {
    RoutedTuple rt;
    /// Producer identity (for acknowledgments and processed-tracking).
    std::string producer_key;
    /// Round epoch stamped on the carrying batch; a state-move purge for
    /// round R skips tuples with round >= R (already routed by R's map).
    uint64_t round = 0;
    /// Bytes this tuple holds against its producer's credit window
    /// (0 with flow control off). Released exactly once, when the tuple
    /// is popped for processing or purged by a state move.
    size_t wire_bytes = 0;
  };

  struct ProducerTracking {
    Address address;
    std::unique_ptr<AckBatcher> acks;
    /// Every seq of this producer whose processing completed here (never
    /// resent by state moves).
    std::unordered_set<uint64_t> processed;
    /// A state-resident (retained) input and the bucket its state lives
    /// in: it stays "needed" until the fragment has finished AND all of
    /// its outputs are acknowledged downstream — until then it is the
    /// only copy from which the state could be rebuilt after a crash.
    /// When the bucket's state is purged (moved to another consumer),
    /// the entry is dropped: the new owner's copy governs from then on.
    struct RetainedInput {
      uint64_t seq;
      int bucket;
    };
    std::vector<RetainedInput> retained_unacked;
    int exchange_id = -1;
    /// Flow-control account of this link (D11).
    CreditAccount credit;
  };

  struct PortState {
    PortState() = default;
    PortState(PortState&&) = default;
    PortState& operator=(PortState&&) = default;
    PortState(const PortState&) = delete;
    PortState& operator=(const PortState&) = delete;

    InputWiring wiring;
    std::deque<QueuedTuple> queue;
    /// Probe tuples parked while their bucket's build state moves.
    std::deque<QueuedTuple> parked;
    /// Producers that sent their end-of-stream marker.
    std::set<std::string> eos_from;
    /// Producers reported crashed before their EOS arrived.
    std::set<std::string> lost;
    std::unordered_map<std::string, ProducerTracking> producers;
    /// Flow control: bytes currently held (queued + parked) on this port
    /// and the peak seen; pressure episode tracking (D11).
    uint64_t held_bytes = 0;
    uint64_t peak_held_bytes = 0;
    SimTime pressure_since = -1.0;
    bool pressure_emitted = false;

    bool EosComplete() const {
      size_t done = eos_from.size();
      for (const std::string& key : lost) {
        if (eos_from.count(key) == 0) ++done;
      }
      return done >= static_cast<size_t>(wiring.num_producers);
    }
  };

  // --- message handlers -------------------------------------------------
  void OnTupleBatch(const Message& msg, const TupleBatchPayload& batch);
  void OnEos(const EosPayload& eos);
  void OnProducerLost(const ProducerLostPayload& lost);
  void OnAck(const AckPayload& ack);
  void OnRedistribute(const RedistributeRequestPayload& request);
  void OnStateMoveRequest(const Message& msg,
                          const StateMoveRequestPayload& request);
  void OnStateMoveReply(const StateMoveReplyPayload& reply);
  void OnRestoreComplete(const RestoreCompletePayload& restore);
  void OnCompletionGrant();
  /// Routes a (possibly deferred) StateMoveRequest/RestoreComplete.
  void DispatchStateMove(const Message& msg);

  // --- driver ------------------------------------------------------------
  /// Port whose tuples should be processed next (-1: nothing runnable).
  int PickPort();
  /// True when earlier ports are fully drained (two-phase ordering).
  bool PortRunnable(int port) const;
  void MaybeProcess();
  void ProcessScanRow();
  void ProcessQueuedTuple(int port);
  /// Offers staged outputs to the producer; returns their seqs.
  std::vector<uint64_t> DeliverOutputs(ExecContext* ctx);
  void RecordProcessed(int port, const QueuedTuple& qt, bool retained,
                       const std::vector<uint64_t>& output_seqs);
  /// Marks an input tuple safe (enqueues its acknowledgment).
  void AckInput(int port, const std::string& producer_key, uint64_t seq);
  /// Cascading acknowledgments: outputs acked downstream release inputs.
  void OnOutputsAcked(const std::vector<uint64_t>& seqs);
  /// Acknowledges retained (state-resident) inputs once the fragment has
  /// finished and its own recovery log drained (outputs durable).
  void MaybeAckRetained();
  void EmitM1IfDue(double cost_ms);
  void FlushAcks(int port, const std::string& producer_key, bool force);

  // --- flow control (D11) -----------------------------------------------
  bool FlowControlOn() const {
    return plan_.config.flow_control_enabled &&
           plan_.config.credit_window_bytes > 0;
  }
  size_t CreditGrantThreshold() const;
  /// Releases `bytes` of a producer's credit (tuple processed or purged)
  /// and sends a CreditGrant when the batched releases cross the
  /// threshold. Also refreshes the port's pressure tracking.
  void ReleaseCredit(int port_idx, const std::string& producer_key,
                     size_t bytes);
  /// Sends any sub-threshold pending grants (called when the driver goes
  /// idle or parks on credit, so an upstream producer can never starve on
  /// releases that sit below the batching threshold forever).
  void FlushCreditGrants();
  void SendCreditGrant(ProducerTracking* tracking);
  void UpdateQueuePressure(int port_idx);

  // --- completion ---------------------------------------------------------
  bool LocallyDrained() const;
  void CheckCompletion();
  void FinishFragment();
  ProducerTracking& TrackProducer(PortState* port, const SubplanId& producer,
                                  const Address& address, int exchange_id);

  void Fail(const Status& status);

  GridNode* node_;
  Network* network_;
  FragmentInstancePlan plan_;
  TablePtr scan_table_;

  std::vector<std::unique_ptr<PhysicalOperator>> ops_;
  std::unique_ptr<ExchangeProducer> producer_;
  std::vector<PortState> ports_;
  ExecContext ctx_;

  /// State-move rounds announced by a producer whose RestoreComplete has
  /// not arrived yet. While any round is open, resent tuples may still be
  /// in flight (they precede the RestoreComplete on the producer's link),
  /// so the fragment must not finish.
  std::map<std::string, std::set<uint64_t>> open_state_rounds_;

  /// Buckets whose build state is being restored here (probe tuples for
  /// them are parked). Only non-empty on stateful fragments.
  std::unordered_set<int> awaiting_restore_;
  /// Buckets this instance lost in an in-flight round (their probe tuples
  /// are parked until the probe-side purge arrives).
  std::unordered_set<int> frozen_lost_;
  /// Open failure-recovery rounds on the build port, as (producer key,
  /// round) pairs. A recovery purge discards queued build tuples of EVERY
  /// bucket — including ones this instance keeps — so until the
  /// producer's resends land (RestoreComplete), the build state may be
  /// missing arbitrary rows and no probe tuple may run at all.
  std::set<std::pair<std::string, uint64_t>> build_recovery_rounds_;

  /// Cascading-acknowledgment bookkeeping: an input tuple is acknowledged
  /// upstream only when every output tuple derived from it has been
  /// acknowledged by our consumers ("checkpoints are returned when the
  /// tuples are not needed any more by the operators higher up"). Without
  /// this, a crash could lose results that were acknowledged but still
  /// buffered in the dead machine's exchange.
  struct PendingInput {
    int port = 0;
    std::string producer_key;
    uint64_t seq = 0;
    size_t remaining_outputs = 0;
  };
  /// output seq -> the input awaiting it.
  std::unordered_map<uint64_t, std::shared_ptr<PendingInput>>
      output_to_input_;

  /// StateMoveRequests arriving while a tuple is mid-processing are
  /// deferred until the work item completes; otherwise the in-flight
  /// tuple would be missing from both the purge and the processed-set
  /// reply, and the producer would resend it (duplicating results).
  std::vector<Message> deferred_state_moves_;

  bool began_ = false;
  bool processing_ = false;
  /// True while deferred control messages are being dispatched; keeps the
  /// tuple driver quiescent so purges/replies never race with new work.
  bool dispatching_control_ = false;
  bool finished_ = false;
  bool completion_offered_ = false;
  size_t scan_row_ = 0;
  SimTime idle_since_ = 0.0;
  bool idle_tracking_ = false;

  // M1 accumulation since the last emission.
  uint64_t m1_tuples_ = 0;
  double m1_cost_ms_ = 0.0;
  double m1_wait_ms_ = 0.0;

  FragmentStats stats_;
  Status exec_status_;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_FRAGMENT_EXECUTOR_H_
