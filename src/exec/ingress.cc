#include "exec/ingress.h"

namespace gqp {

void IngressManager::AddPort(int num_producers) {
  Port port;
  port.num_producers = num_producers;
  ports_.push_back(std::move(port));
}

bool IngressManager::Fenced(int port, const std::string& key) const {
  if (!ValidPort(port)) return false;
  return ports_[static_cast<size_t>(port)].lost.count(key) > 0;
}

void IngressManager::MarkEos(int port, const std::string& key) {
  Port& p = ports_[static_cast<size_t>(port)];
  if (p.lost.count(key) == 0) p.eos_from.insert(key);
}

void IngressManager::MarkLost(int port, const std::string& key) {
  ports_[static_cast<size_t>(port)].lost.insert(key);
}

bool IngressManager::EosComplete(int port) const {
  const Port& p = ports_[static_cast<size_t>(port)];
  // Keep whatever a crashed producer already delivered; just stop waiting
  // for its end-of-stream marker (EOS and lost may both be recorded).
  size_t done = p.eos_from.size();
  for (const std::string& key : p.lost) {
    if (p.eos_from.count(key) == 0) ++done;
  }
  return done >= static_cast<size_t>(p.num_producers);
}

}  // namespace gqp
