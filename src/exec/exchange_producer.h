// Exchange producer: the upstream half of the paper's enhanced exchange
// operator. Owns the distribution policy, per-consumer buffers, checkpoint
// insertion, the recovery log, and the retrospective (R1) redistribution
// protocol. It is embedded in a FragmentExecutor, which supplies the
// messaging/work hooks.

#ifndef GRIDQP_EXEC_EXCHANGE_PRODUCER_H_
#define GRIDQP_EXEC_EXCHANGE_PRODUCER_H_

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/distribution_policy.h"
#include "exec/exchange_messages.h"
#include "exec/exec_config.h"
#include "exec/flow_control.h"
#include "ft/recovery_log.h"

namespace gqp {

/// A consumer endpoint of this exchange.
struct ConsumerEndpoint {
  SubplanId id;
  Address address;
};

/// Wiring of a fragment's output exchange.
struct OutputWiring {
  ExchangeDesc desc;
  std::vector<ConsumerEndpoint> consumers;
  std::vector<double> initial_weights;
  /// Expected number of input tuples (scan cardinality) for progress
  /// estimation; 0 = unknown.
  uint64_t estimated_rows = 0;
};

/// Producer-side counters.
struct ProducerStats {
  uint64_t tuples_offered = 0;
  /// Routed (buffered) per consumer; includes resends, and tuples later
  /// recalled from the buffer before any send.
  std::vector<uint64_t> tuples_to_consumer;
  /// Tuples actually handed to the network per consumer (counted when the
  /// flush work item completes on a live node). The chaos harness checks
  /// these against consumer-side receive counters: every tuple sent to a
  /// surviving consumer must arrive.
  std::vector<uint64_t> tuples_sent_to_consumer;
  uint64_t buffers_sent = 0;
  uint64_t resent_tuples = 0;
  uint64_t redistributions_applied = 0;
  uint64_t redistributions_rejected = 0;
};

/// \brief The producing half of an exchange.
class ExchangeProducer {
 public:
  /// Callbacks into the owning FragmentExecutor.
  struct Hooks {
    /// Sends a payload to consumer `idx` (over the bus).
    std::function<Status(int idx, PayloadPtr payload)> send;
    /// Charges exchange CPU work on the local node; `done` runs when the
    /// work completes (may be null for fire-and-forget accounting).
    std::function<void(double cost_ms, std::function<void()> done)>
        submit_work;
    /// Reports one sent buffer for M2 monitoring: consumer index, CPU send
    /// cost, tuple count and serialized size (the executor adds the
    /// network transfer time).
    std::function<void(int idx, double send_cost_ms, size_t tuples,
                       size_t wire_bytes)>
        on_buffer_sent;
    /// Reports completion of a redistribution round (to the Responder).
    std::function<void(uint64_t round, bool applied)> on_round_done;
    /// Reports output seqs acknowledged by consumers (drives cascading
    /// acknowledgments: an input tuple is only safe once every output
    /// derived from it is safe downstream).
    std::function<void(const std::vector<uint64_t>& seqs)> on_acked;
  };

  ExchangeProducer(SubplanId self, OutputWiring wiring, ExecConfig config,
                   Hooks hooks);

  /// Initializes the distribution policy.
  Status Open();

  /// Routes, logs and buffers one output tuple; flushes full buffers.
  /// Returns the sequence number assigned to the tuple.
  Result<uint64_t> Offer(const Tuple& tuple);

  /// Input exhausted: flush all buffers and send EOS (deferred while a
  /// retrospective round is in flight).
  Status FinishInput();

  /// Re-opens the stream after the fragment resumed (a recovery resend
  /// arrived post-completion): further Offers are accepted and EOS goes
  /// out again once the fragment re-finishes. Consumers track EOS markers
  /// as a set, so the repeated marker is harmless.
  void Reopen() {
    input_finished_ = false;
    eos_sent_ = false;
  }

  /// Handles an acknowledgment batch from a consumer.
  void OnAck(const AckPayload& ack);

  /// Responder asked for a redistribution (R1 or R2). Reports the outcome
  /// via hooks.on_round_done (synchronously for R2/rejections,
  /// asynchronously after the state-move dance for R1).
  Status HandleRedistribute(const RedistributeRequestPayload& request);

  /// Consumer reply of the in-flight R1 round.
  Status HandleStateMoveReply(const StateMoveReplyPayload& reply);

  /// Coordinator reported `consumer` crashed: stop sending to it and drop
  /// it from the in-flight round (it can never reply; waiting would
  /// deadlock the round and with it the recovery that must follow).
  /// Unknown consumers are ignored.
  Status HandleConsumerLost(const SubplanId& consumer);

  /// Coordinator epoch stamped into outgoing StateMoveRequests (D14);
  /// consumers fence rounds carrying a stale epoch after a failover.
  void set_coordinator_epoch(uint64_t epoch) { coordinator_epoch_ = epoch; }

  /// Flow control (D11): a consumer replenished credit. Returns true when
  /// the grant advanced the link's released counter (the owning executor
  /// should re-probe the driver — headroom may have appeared).
  bool OnCreditGrant(const CreditGrantPayload& grant);

  /// True when every live consumer link has credit headroom (always true
  /// with flow control off). The executor gates *starting* new input
  /// tuples on this; round resends and control traffic bypass it.
  bool HasCreditHeadroom() const { return credit_.HasHeadroom(); }
  void NoteCreditBlocked() { credit_.NoteBlocked(); }
  const CreditLedger& credit() const { return credit_; }

  /// Flow control: flushes every non-empty live-consumer buffer now.
  /// Called when the driver parks on exhausted credit — a window smaller
  /// than `buffer_tuples` would otherwise strand tuples in a buffer that
  /// never fills, and the credit they hold could never be granted back.
  Status FlushPartialBuffers();

  /// Fraction of the expected input already offered (1.0 once finished).
  double ProgressFraction() const;

  bool eos_sent() const { return eos_sent_; }
  bool input_finished() const { return input_finished_; }
  bool round_in_flight() const { return round_.has_value(); }
  size_t log_size() const { return log_.size(); }
  const RecoveryLog& log() const { return log_; }
  const ProducerStats& stats() const { return stats_; }
  const DistributionPolicy* policy() const { return policy_.get(); }
  int num_consumers() const {
    return static_cast<int>(wiring_.consumers.size());
  }

  /// One-line dump of the producer state (EOS, log, in-flight round) for
  /// stuck-query diagnostics.
  std::string DebugString() const;

 private:
  struct InFlightRound {
    uint64_t id = 0;
    /// Tuples offered after the policy switched to the new weights are
    /// already routed correctly; only log records below this watermark
    /// are recalled (otherwise a tuple sent under the new map would also
    /// be resent, duplicating it downstream).
    uint64_t recall_before_seq = 0;
    /// Buckets each consumer loses / gains (hash policies).
    std::vector<std::vector<int>> lost;
    std::vector<std::vector<int>> gained;
    bool purge_all = false;
    /// Failure-recovery round: recall is not bucket-scoped (a crashed
    /// consumer may have held records of buckets that since migrated
    /// away); every record a surviving consumer does not claim in its
    /// reply is resent.
    bool recovery = false;
    /// Consumers whose StateMoveReply is still outstanding.
    std::set<int> awaiting_reply;
    /// Processed seqs reported by consumers (must not be resent).
    std::unordered_set<uint64_t> processed;
  };

  /// Flushes consumer `idx`'s buffer as one TupleBatch message.
  Status Flush(int idx, bool resend);

  /// Sends EOS markers to every consumer.
  Status SendEos();

  /// All replies arrived: extract, re-route and resend logged tuples, then
  /// send RestoreComplete markers and finish the round.
  Status CompleteRound();

  Status RouteAndBuffer(const Tuple& tuple, uint64_t seq, bool resend);

  SubplanId self_;
  OutputWiring wiring_;
  ExecConfig config_;
  Hooks hooks_;
  std::unique_ptr<DistributionPolicy> policy_;
  RecoveryLog log_;
  CreditLedger credit_;

  uint64_t next_seq_ = 1;
  /// Id of the latest retrospective round opened here; stamped on every
  /// outgoing batch. Consumers use it to fence their state-move purge
  /// against tuples already routed under the round's new map (which the
  /// recall_before_seq watermark excludes from resending).
  uint64_t round_epoch_ = 0;
  /// Coordinator epoch of this deployment, stamped on StateMoveRequests
  /// so post-failover fences can reject rounds of a deposed primary.
  uint64_t coordinator_epoch_ = 0;
  std::vector<std::vector<RoutedTuple>> buffers_;
  /// CPU cost accumulated per consumer since its last flush (routing/log
  /// appends), charged with the flush work item.
  std::vector<double> pending_overhead_ms_;
  bool input_finished_ = false;
  bool eos_sent_ = false;
  std::optional<InFlightRound> round_;
  /// Crashed consumers: never routed to, never flushed to, never awaited.
  std::set<int> dead_consumers_;
  /// Sticky processed claims from state-move replies: seq -> consumer
  /// index whose outputs hold the record's results. Valid while that
  /// consumer lives; recall skips claimed records so a bucket that moves
  /// on (possibly to a consumer never asked about the seq) cannot cause a
  /// resend and a duplicate. Pruned as acknowledgments arrive.
  std::unordered_map<uint64_t, int> claimed_by_;
  ProducerStats stats_;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_EXCHANGE_PRODUCER_H_
