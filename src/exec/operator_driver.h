// Operator-chain driver of a fragment instance (DESIGN.md §D12): builds
// and owns the physical operator chain, runs tuples through it with cost
// charging into the shared ExecContext, and owns the M1 self-monitoring
// loop (cost/wait per tuple, selectivity) between emissions. Scheduling —
// when a tuple runs, how its composite work item is submitted, what
// happens on completion — stays with the composition root
// (FragmentExecutor).

#ifndef GRIDQP_EXEC_OPERATOR_DRIVER_H_
#define GRIDQP_EXEC_OPERATOR_DRIVER_H_

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "exec/instance_plan.h"
#include "exec/operators.h"
#include "grid/node.h"

namespace gqp {

class OperatorDriver {
 public:
  struct Hooks {
    /// Delivers an M1 monitoring event over the bus.
    std::function<Status(const Address&, PayloadPtr)> send_to;
    /// Reports a chain error (the executor records it and keeps running).
    std::function<void(const Status&)> fail;
  };

  OperatorDriver(GridNode* node, const FragmentInstancePlan* plan,
                 FragmentStats* stats, Hooks hooks);
  ~OperatorDriver();

  /// Instantiates and opens the chain (scan leaves skip the scan
  /// descriptor: the executor itself drives the table).
  Status BuildAndOpen();

  bool has_ops() const { return !ops_.empty(); }
  ExecContext* ctx() { return &ctx_; }

  /// Runs one scan row through the chain, charging the scan descriptor's
  /// cost first.
  Status RunScanRow(const Tuple& row);
  /// Runs one queued exchange tuple through the chain.
  Status RunTuple(int port, const Tuple& tuple, int bucket);

  // --- vectorized mode (DESIGN.md §D13) ---------------------------------
  /// Runs `n` scan rows starting at `start` through the chain as one
  /// batch, charging the scan cost once (n × unit).
  Status RunScanBatch(const Table& table, size_t start, size_t n);
  /// Runs a popped batch of exchange tuples through the chain. `in` is
  /// consumed; per-row retention lands in ctx()->row_retained, outputs in
  /// ctx()->out with their input-row origin in ctx()->out_origin.
  Status RunBatch(int port, TupleBatch* in);

  /// FinishPort on every operator for every port; errors go to `fail`.
  void FinishPorts(size_t num_ports);
  /// Resets the context and flushes chain-finish output into it. Returns
  /// true when the chain exists (the caller delivers ctx()->out).
  bool FinishChain();

  void PurgeBuckets(const std::vector<int>& buckets);

  // --- M1 self-monitoring ----------------------------------------------
  /// Records one tuple's actual (perturbed) cost, in both the fragment
  /// stats and the M1 accumulators.
  void AccumulateTupleCost(double actual_ms) {
    stats_->busy_ms += actual_ms;
    m1_cost_ms_ += actual_ms;
    ++m1_tuples_;
  }
  /// Batch-mode variant: one work item covered `n` tuples, so the M1
  /// accumulators advance by the whole batch at once (batch-boundary
  /// monitoring granularity).
  void AccumulateBatchCost(double actual_ms, uint64_t n) {
    stats_->busy_ms += actual_ms;
    m1_cost_ms_ += actual_ms;
    m1_tuples_ += n;
  }
  /// Records an idle wait that ended when a tuple became runnable.
  void AccumulateWait(double wait_ms) {
    stats_->idle_wait_ms += wait_ms;
    m1_wait_ms_ += wait_ms;
  }
  struct M1Sample {
    double cost_per_tuple_ms = 0.0;
    double wait_per_tuple_ms = 0.0;
    double selectivity = 1.0;
  };
  /// Computes the due sample and resets the accumulators.
  M1Sample TakeM1(uint64_t tuples_processed, uint64_t tuples_emitted);
  /// Emits an M1 event to the MED when a sample is due (monitoring on,
  /// the fragment has an output, and m1_frequency tuples accumulated).
  void MaybeEmitM1(bool has_producer);

  // --- introspection ----------------------------------------------------
  /// Results collected by a root fragment (empty otherwise).
  const std::vector<Tuple>& Results() const;
  /// The chain's hash join, if any (tests inspect its state).
  const HashJoinOperator* FindHashJoin() const;

 private:
  GridNode* node_;
  const FragmentInstancePlan* plan_;
  const FragmentDesc* fragment_;
  FragmentStats* stats_;
  Hooks hooks_;
  /// Walks the batch through the chain; the survivors of the last
  /// operator move into ctx_.out / ctx_.out_origin.
  Status RunChainBatch(int port, TupleBatch* in);

  std::vector<std::unique_ptr<PhysicalOperator>> ops_;
  ExecContext ctx_;
  /// Ping-pong scratch batches for RunChainBatch (capacity reused).
  TupleBatch scratch_a_;
  TupleBatch scratch_b_;
  /// Scan-batch staging (capacity reused).
  TupleBatch scan_batch_;
  /// Interned scan tag + base cost (scan leaves only).
  std::string_view scan_tag_;
  double scan_cost_ms_ = 0.0;

  // M1 accumulation since the last emission.
  uint64_t m1_tuples_ = 0;
  double m1_cost_ms_ = 0.0;
  double m1_wait_ms_ = 0.0;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_OPERATOR_DRIVER_H_
