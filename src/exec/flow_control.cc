#include "exec/flow_control.h"

#include <algorithm>

namespace gqp {

void CreditLedger::Configure(size_t num_consumers, size_t window_bytes) {
  window_bytes_ = window_bytes;
  links_.clear();
  if (window_bytes_ > 0) links_.resize(num_consumers);
}

void CreditLedger::Charge(int idx, size_t bytes, bool recall) {
  if (!enabled()) return;
  Link& link = links_[static_cast<size_t>(idx)];
  link.charged += bytes;
  if (recall) {
    recall_burst_bytes_ += bytes;
    stats_.total_recall_bytes += bytes;
  }
  if (!link.voided) {
    stats_.peak_outstanding_bytes =
        std::max(stats_.peak_outstanding_bytes, link.charged - link.released);
  }
}

void CreditLedger::Uncharge(int idx, size_t bytes) {
  if (!enabled()) return;
  Link& link = links_[static_cast<size_t>(idx)];
  const uint64_t outstanding = link.charged - link.released;
  link.charged -= std::min<uint64_t>(bytes, outstanding);
}

bool CreditLedger::OnGrant(int idx, uint64_t released_bytes) {
  if (!enabled()) return false;
  Link& link = links_[static_cast<size_t>(idx)];
  ++stats_.grants_received;
  if (link.voided || released_bytes <= link.released) return false;
  // Grants are cumulative: retransmitted or reordered ones only ever
  // advance the counter to the max seen. Never past charged — a link
  // cannot owe the producer credit.
  link.released = std::min<uint64_t>(released_bytes, link.charged);
  return true;
}

void CreditLedger::VoidConsumer(int idx) {
  if (!enabled()) return;
  Link& link = links_[static_cast<size_t>(idx)];
  link.voided = true;
  link.released = link.charged;
}

bool CreditLedger::HasHeadroom() const {
  if (!enabled()) return true;
  for (const Link& link : links_) {
    if (link.voided) continue;
    if (link.charged - link.released >= window_bytes_) return false;
  }
  return true;
}

void CreditLedger::EndRecallBurst() {
  stats_.max_recall_burst_bytes =
      std::max(stats_.max_recall_burst_bytes, recall_burst_bytes_);
  recall_burst_bytes_ = 0;
}

uint64_t CreditLedger::Outstanding(int idx) const {
  if (!enabled()) return 0;
  const Link& link = links_[static_cast<size_t>(idx)];
  return link.voided ? 0 : link.charged - link.released;
}

}  // namespace gqp
