// Flat hash-join build table: open addressing over one contiguous entry
// vector, replacing the former unordered_map<hash, vector<BuildEntry>>
// forest (one node allocation per distinct key plus a vector per chain).
//
// Layout: every build row is appended to `entries_` in arrival order and
// never moves; rows with equal key hash form a chain threaded through
// 1-based `next` offsets, appended at the tail so probe emission order is
// exactly insertion order (replay determinism, DESIGN.md "Testing &
// determinism contract"). The slot array maps hash -> chain head by
// linear probing and stores 1-based entry offsets, so growth rehashes
// only the head pointers — entries stay put.

#ifndef GRIDQP_EXEC_FLAT_JOIN_TABLE_H_
#define GRIDQP_EXEC_FLAT_JOIN_TABLE_H_

#include <cstdint>
#include <vector>

#include "storage/tuple.h"
#include "storage/value.h"

namespace gqp {

/// \brief Open-addressing multimap from key hash to build tuples.
class FlatJoinTable {
 public:
  FlatJoinTable() = default;

  /// Pre-sizes the table for an expected number of build rows (e.g. the
  /// optimizer's build-side cardinality estimate divided by the number of
  /// partitions). Never shrinks.
  void Reserve(size_t expected_rows);

  /// Appends one build row. Returns true when a value-identical tuple with
  /// the same hash already sits in the table (the duplicate-build-insert
  /// invariant the join operator tracks).
  bool Insert(uint64_t hash, const Value& key, const Tuple& tuple);

  /// Invokes `fn(const Value& key, const Tuple& tuple)` for every entry
  /// whose hash matches, in insertion order. Callers skip hash collisions
  /// by comparing the key.
  template <typename Fn>
  void ForEachMatch(uint64_t hash, Fn&& fn) const {
    if (entries_.empty()) return;
    for (uint32_t at = FindHead(hash); at != 0; at = entries_[at - 1].next) {
      const Entry& e = entries_[at - 1];
      fn(e.key, e.tuple);
    }
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Number of distinct key hashes (occupied slots) — exposed for tests.
  size_t distinct_hashes() const { return occupied_; }
  /// Current slot-array capacity — exposed for growth tests.
  size_t slot_capacity() const { return slots_.size(); }

  void Clear();

 private:
  struct Entry {
    uint64_t hash;
    uint32_t next;  // 1-based offset of the next same-hash entry; 0 = end
    uint32_t tail;  // chain heads: 1-based offset of the chain's last entry
    Value key;
    Tuple tuple;
  };

  /// 1-based offset of the chain head for `hash`, or 0. Precondition:
  /// slots_ non-empty.
  uint32_t FindHead(uint64_t hash) const;

  void Rehash(size_t new_slot_count);

  std::vector<Entry> entries_;
  std::vector<uint32_t> slots_;  // 1-based entry offsets; 0 = empty
  size_t occupied_ = 0;          // slots in use (distinct hashes)
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_FLAT_JOIN_TABLE_H_
