// Flat hash-join build table: open addressing over one contiguous entry
// vector, replacing the former unordered_map<hash, vector<BuildEntry>>
// forest (one node allocation per distinct key plus a vector per chain).
//
// Layout: every build row is appended to `entries_` in arrival order and
// never moves; rows with equal key hash form a chain threaded through
// 1-based `next` offsets, appended at the tail so probe emission order is
// exactly insertion order (replay determinism, DESIGN.md "Testing &
// determinism contract"). The slot array maps hash -> chain head by
// linear probing and stores 1-based entry offsets, so growth rehashes
// only the head pointers — entries stay put.

#ifndef GRIDQP_EXEC_FLAT_JOIN_TABLE_H_
#define GRIDQP_EXEC_FLAT_JOIN_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/tuple.h"

namespace gqp {

/// \brief Open-addressing multimap from key hash to build tuples.
class FlatJoinTable {
 public:
  FlatJoinTable() = default;

  /// Pre-sizes the table for an expected number of build rows (e.g. the
  /// optimizer's build-side cardinality estimate divided by the number of
  /// partitions). Never shrinks.
  void Reserve(size_t expected_rows);

  /// Appends one build row. Returns true when a value-identical tuple with
  /// the same hash already sits in the table (the duplicate-build-insert
  /// invariant the join operator tracks). The join key is not stored — it
  /// lives in the tuple itself; probes re-read it from the matched tuple's
  /// key column when filtering hash collisions.
  bool Insert(uint64_t hash, const Tuple& tuple);

  /// Invokes `fn(const Tuple& tuple)` for every entry whose hash matches,
  /// in insertion order. Callers skip hash collisions by comparing the
  /// tuple's key column.
  template <typename Fn>
  void ForEachMatch(uint64_t hash, Fn&& fn) const {
    if (entries_.empty()) return;
    ForEachMatchFrom(FindHead(hash), std::forward<Fn>(fn));
  }

  /// 1-based offset of the chain head for `hash`, or 0 when absent. Lets
  /// batched probes split the slot lookup from the chain walk so the
  /// entry fetch can be prefetched between the two.
  uint32_t Head(uint64_t hash) const {
    if (entries_.empty()) return 0;
    return FindHead(hash);
  }

  /// No-candidate sentinel for CandidateSlot.
  static constexpr uint32_t kNoSlot = ~uint32_t{0};

  /// First slot whose 8-bit tag matches `hash` (linear scan from the home
  /// slot, stopping at an empty slot), with the candidate's entry
  /// prefetched; kNoSlot when the scan hits an empty slot first. The
  /// candidate is unconfirmed — 1 in 256 colliding hashes alias the tag —
  /// so callers must resolve it with ConfirmHead. Splitting the tag scan
  /// (cache-resident) from the confirmation (an entry fetch) lets batched
  /// probes overlap the entry misses of a whole batch.
  uint32_t CandidateSlot(uint64_t hash) const {
    if (entries_.empty()) return kNoSlot;
    const size_t mask = slots_.size() - 1;
    const uint8_t tag = TagOf(hash);
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      if (slots_[i] == 0) return kNoSlot;
      if (tags_[i] == tag) {
        PrefetchEntry(slots_[i]);
        return static_cast<uint32_t>(i);
      }
    }
  }

  /// Resolves a CandidateSlot result to a chain head (1-based offset, or
  /// 0 when the candidate was a tag alias and no later slot matches).
  uint32_t ConfirmHead(uint64_t hash, uint32_t slot) const {
    const size_t mask = slots_.size() - 1;
    const uint8_t tag = TagOf(hash);
    for (size_t i = slot;; i = (i + 1) & mask) {
      const uint32_t at = slots_[i];
      if (at == 0) return 0;
      if (tags_[i] == tag && entries_[at - 1].hash == hash) return at;
    }
  }

  /// Walks the chain starting at a head previously returned by Head().
  template <typename Fn>
  void ForEachMatchFrom(uint32_t head, Fn&& fn) const {
    for (uint32_t at = head; at != 0; at = entries_[at - 1].next) {
      fn(entries_[at - 1].tuple);
    }
  }

  /// Hints the cache about the slot a subsequent Head(hash) or
  /// ForEachMatch(hash) will touch first. Batched probes hash a whole
  /// batch up front, prefetch, then probe — hiding the slot-array miss
  /// behind the other rows' work.
  void Prefetch(uint64_t hash) const {
    if (slots_.empty()) return;
#if defined(__GNUC__) || defined(__clang__)
    const size_t i = hash & (slots_.size() - 1);
    __builtin_prefetch(&slots_[i]);
    __builtin_prefetch(&tags_[i]);
#endif
  }

  /// Hints the cache about the chain-head entry for a head returned by
  /// Head(). No-op for head == 0.
  void PrefetchEntry(uint32_t head) const {
#if defined(__GNUC__) || defined(__clang__)
    if (head != 0) __builtin_prefetch(&entries_[head - 1]);
#else
    (void)head;
#endif
  }

  /// Hints the cache about the chain-head tuple's payload and the second
  /// chain entry. Precondition: the head entry itself is already cached
  /// (a PrefetchEntry(head) issued earlier) — this reads it to chase the
  /// payload pointer one pipeline stage before the match walk needs it.
  void PrefetchMatchPayload(uint32_t head) const {
#if defined(__GNUC__) || defined(__clang__)
    if (head == 0) return;
    const Entry& e = entries_[head - 1];
    PrefetchPayload(e.tuple);
    if (e.next != 0) {
      // The next entry struct is almost always on the head's cache line
      // (entries are 24 bytes, chains insert consecutively), so chasing
      // one link here is cheap — and its payload is a different row.
      PrefetchPayload(entries_[e.next - 1].tuple);
    }
#else
    (void)head;
#endif
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Number of distinct key hashes (occupied slots) — exposed for tests.
  size_t distinct_hashes() const { return occupied_; }
  /// Current slot-array capacity — exposed for growth tests.
  size_t slot_capacity() const { return slots_.size(); }

  void Clear();

 private:
#if defined(__GNUC__) || defined(__clang__)
  /// Prefetches the first two cache lines of a tuple's value array (the
  /// key compare and output concat read the whole row).
  static void PrefetchPayload(const Tuple& tuple) {
    const char* v = reinterpret_cast<const char*>(tuple.data());
    __builtin_prefetch(v);
    __builtin_prefetch(v + 64);
  }
#endif

  // 24 bytes: small enough that a chain walk touches few cache lines. The
  // key is deliberately absent — it is a column of `tuple`.
  struct Entry {
    uint64_t hash;
    uint32_t next;  // 1-based offset of the next same-hash entry; 0 = end
    uint32_t tail;  // chain heads: 1-based offset of the chain's last entry
    Tuple tuple;
  };

  /// Slot tag: the hash's high byte (the slot index comes from the low
  /// bits, so the tag adds independent entropy). A one-byte compare
  /// rejects 255/256 of probe collisions without touching the entry
  /// vector.
  static uint8_t TagOf(uint64_t hash) {
    return static_cast<uint8_t>(hash >> 56);
  }

  /// 1-based offset of the chain head for `hash`, or 0. Precondition:
  /// slots_ non-empty.
  uint32_t FindHead(uint64_t hash) const;

  void Rehash(size_t new_slot_count);

  std::vector<Entry> entries_;
  std::vector<uint32_t> slots_;  // 1-based entry offsets; 0 = empty
  std::vector<uint8_t> tags_;    // parallel to slots_: occupant hash tag
  size_t occupied_ = 0;          // slots in use (distinct hashes)
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_FLAT_JOIN_TABLE_H_
