#include "exec/operators.h"

#include <algorithm>

#include "common/interner.h"
#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

Status PhysicalOperator::Open(ExecContext*) { return Status::OK(); }

Status PhysicalOperator::FinishPort(int, ExecContext*) {
  return Status::OK();
}

Status PhysicalOperator::Finish(ExecContext* ctx) {
  if (next_ != nullptr) return next_->Finish(ctx);
  return Status::OK();
}

void PhysicalOperator::PurgeBuckets(const std::vector<int>&) {}

Status PhysicalOperator::Emit(const Tuple& tuple, ExecContext* ctx) {
  if (next_ != nullptr) return next_->Process(0, tuple, -1, ctx);
  ctx->out.push_back(tuple);
  return Status::OK();
}

// Generic batch step for operators without a hand-written override: runs
// the scalar Process per row with chaining suppressed and re-maps the
// per-tuple outputs/retention into batch form. Charges land per row, so
// the ledger counts match a scalar run exactly.
Status PhysicalOperator::ProcessBatch(int port, TupleBatch* in,
                                      TupleBatch* out, ExecContext* ctx) {
  PhysicalOperator* saved_next = next_;
  next_ = nullptr;
  Status status = Status::OK();
  const size_t stage_base = ctx->out.size();
  for (size_t i = 0; i < in->size() && status.ok(); ++i) {
    ctx->retained = false;
    status = Process(port, in->tuple(i), in->bucket(i), ctx);
    if (ctx->retained && in->origin(i) < ctx->row_retained.size()) {
      ctx->row_retained[in->origin(i)] = 1;
    }
    for (size_t j = stage_base; j < ctx->out.size(); ++j) {
      out->Append(std::move(ctx->out[j]), -1, in->origin(i));
    }
    ctx->out.resize(stage_base);
  }
  ctx->retained = false;
  next_ = saved_next;
  return status;
}

// ---- Filter ------------------------------------------------------------

FilterOperator::FilterOperator(const PhysOpDesc& desc)
    : predicate_(desc.predicate),
      cost_ms_(desc.base_cost_ms),
      tag_(InternString(desc.cost_tag)) {}

Status FilterOperator::Process(int, const Tuple& tuple, int,
                               ExecContext* ctx) {
  ctx->Charge(tag_, cost_ms_);
  GQP_ASSIGN_OR_RETURN(Value v, predicate_->Eval(tuple, ctx->functions));
  if (!ValueIsTrue(v)) return Status::OK();
  return Emit(tuple, ctx);
}

Status FilterOperator::ProcessBatch(int, TupleBatch* in, TupleBatch* out,
                                    ExecContext* ctx) {
  const size_t n = in->size();
  ctx->ChargeN(tag_, cost_ms_, n);
  std::vector<unsigned char>& mask = ctx->mask;
  mask.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    GQP_ASSIGN_OR_RETURN(Value v,
                         predicate_->Eval(in->tuple(i), ctx->functions));
    mask[i] = ValueIsTrue(v) ? 1 : 0;
  }
  for (size_t i = 0; i < n; ++i) {
    if (mask[i] != 0) out->Append(in->TakeTuple(i), -1, in->origin(i));
  }
  return Status::OK();
}

// ---- Project -----------------------------------------------------------

ProjectOperator::ProjectOperator(const PhysOpDesc& desc)
    : exprs_(desc.exprs),
      out_schema_(desc.out_schema),
      cost_ms_(desc.base_cost_ms),
      tag_(InternString(desc.cost_tag)) {}

Status ProjectOperator::Process(int, const Tuple& tuple, int,
                                ExecContext* ctx) {
  ctx->Charge(tag_, cost_ms_);
  std::vector<Value> values;
  values.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    GQP_ASSIGN_OR_RETURN(Value v, e->Eval(tuple, ctx->functions));
    values.push_back(std::move(v));
  }
  return Emit(Tuple(out_schema_, std::move(values)), ctx);
}

Status ProjectOperator::ProcessBatch(int, TupleBatch* in, TupleBatch* out,
                                     ExecContext* ctx) {
  const size_t n = in->size();
  ctx->ChargeN(tag_, cost_ms_, n);
  std::vector<Value> values;
  for (size_t i = 0; i < n; ++i) {
    values.clear();
    values.reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) {
      GQP_ASSIGN_OR_RETURN(Value v, e->Eval(in->tuple(i), ctx->functions));
      values.push_back(std::move(v));
    }
    out->Append(Tuple(out_schema_, std::move(values)), -1, in->origin(i));
  }
  return Status::OK();
}

// ---- OperationCall -----------------------------------------------------

OperationCallOperator::OperationCallOperator(const PhysOpDesc& desc)
    : ws_name_(desc.ws_name),
      arg_col_(desc.arg_col),
      out_schema_(desc.out_schema),
      cost_ms_(desc.base_cost_ms),
      tag_(InternString(desc.cost_tag)) {}

Status OperationCallOperator::Process(int, const Tuple& tuple, int,
                                      ExecContext* ctx) {
  ctx->Charge(tag_, cost_ms_);
  if (arg_col_ >= tuple.size()) {
    return Status::OutOfRange(
        StrCat("operation call argument column ", arg_col_, " out of range"));
  }
  GQP_ASSIGN_OR_RETURN(FunctionRegistry::Fn fn,
                       ctx->functions->Find(ws_name_));
  GQP_ASSIGN_OR_RETURN(Value result, fn({tuple.at(arg_col_)}));
  std::vector<Value> values(tuple.data(), tuple.data() + tuple.size());
  values.push_back(std::move(result));
  return Emit(Tuple(out_schema_, std::move(values)), ctx);
}

Status OperationCallOperator::ProcessBatch(int, TupleBatch* in,
                                           TupleBatch* out,
                                           ExecContext* ctx) {
  const size_t n = in->size();
  if (n == 0) return Status::OK();
  ctx->ChargeN(tag_, cost_ms_, n);
  // One registry lookup for the whole batch (the std::function copy is
  // the scalar path's per-tuple tax).
  GQP_ASSIGN_OR_RETURN(FunctionRegistry::Fn fn,
                       ctx->functions->Find(ws_name_));
  std::vector<Value> args(1);
  for (size_t i = 0; i < n; ++i) {
    const Tuple& tuple = in->tuple(i);
    if (arg_col_ >= tuple.size()) {
      return Status::OutOfRange(StrCat("operation call argument column ",
                                       arg_col_, " out of range"));
    }
    args[0] = tuple.at(arg_col_);
    GQP_ASSIGN_OR_RETURN(Value result, fn(args));
    std::vector<Value> values(tuple.data(), tuple.data() + tuple.size());
    values.push_back(std::move(result));
    out->Append(Tuple(out_schema_, std::move(values)), -1, in->origin(i));
  }
  return Status::OK();
}

// ---- HashJoin ----------------------------------------------------------

HashJoinOperator::HashJoinOperator(const PhysOpDesc& desc)
    : build_key_(desc.build_key),
      probe_key_(desc.probe_key),
      out_schema_(desc.out_schema),
      probe_cost_ms_(desc.base_cost_ms),
      build_cost_ms_(desc.build_cost_ms),
      tag_(InternString(desc.cost_tag)),
      bucket_reserve_hint_(
          desc.estimated_build_rows /
              static_cast<size_t>(std::max(desc.build_partitions, 1)) +
          1) {}

FlatJoinTable& HashJoinOperator::TableForBucket(int bucket) {
  if (static_cast<size_t>(bucket) >= state_.size()) {
    state_.resize(static_cast<size_t>(bucket) + 1);
  }
  FlatJoinTable& table = state_[static_cast<size_t>(bucket)];
  if (table.empty()) table.Reserve(bucket_reserve_hint_);
  return table;
}

Status HashJoinOperator::Process(int port, const Tuple& tuple, int bucket,
                                 ExecContext* ctx) {
  if (bucket < 0) bucket = 0;  // single-consumer (unpartitioned) execution
  if (port == 0) {
    ctx->Charge(tag_, build_cost_ms_);
    if (build_key_ >= tuple.size()) {
      return Status::OutOfRange("build key column out of range");
    }
    const Value& key = tuple.at(build_key_);
    if (TableForBucket(bucket).Insert(key.JoinHash(), tuple)) {
      ++duplicate_build_inserts_;
      GQP_LOG_WARN << "hash join: duplicate build insert, key="
                   << key.ToString() << " bucket=" << bucket;
    }
    ctx->retained = true;
    return Status::OK();
  }
  if (port == 1) {
    ctx->Charge(tag_, probe_cost_ms_);
    if (probe_key_ >= tuple.size()) {
      return Status::OutOfRange("probe key column out of range");
    }
    const Value& key = tuple.at(probe_key_);
    if (static_cast<size_t>(bucket) >= state_.size()) return Status::OK();
    Status status = Status::OK();
    state_[static_cast<size_t>(bucket)].ForEachMatch(
        key.JoinHash(), [&](const Tuple& build_tuple) {
          // Hash collision: the stored key is the build tuple's key column.
          if (!status.ok() || build_tuple.at(build_key_) != key) return;
          status = Emit(Tuple::Concat(out_schema_, build_tuple, tuple), ctx);
        });
    return status;
  }
  return Status::InvalidArgument(
      StrCat("hash join has no input port ", port));
}

Status HashJoinOperator::ProcessBatch(int port, TupleBatch* in,
                                      TupleBatch* out, ExecContext* ctx) {
  const size_t n = in->size();
  if (port == 0) {
    ctx->ChargeN(tag_, build_cost_ms_, n);
    // Pre-size each touched bucket for its share of the batch so entry
    // vectors and slot arrays grow at most once per batch.
    batch_bucket_counts_.clear();
    for (size_t i = 0; i < n; ++i) {
      const size_t bucket =
          static_cast<size_t>(in->bucket(i) < 0 ? 0 : in->bucket(i));
      if (bucket >= batch_bucket_counts_.size()) {
        batch_bucket_counts_.resize(bucket + 1, 0);
      }
      ++batch_bucket_counts_[bucket];
    }
    for (size_t b = 0; b < batch_bucket_counts_.size(); ++b) {
      if (batch_bucket_counts_[b] == 0) continue;
      FlatJoinTable& table = TableForBucket(static_cast<int>(b));
      table.Reserve(table.size() + batch_bucket_counts_[b]);
    }
    // Pass 2: hash the key column and prefetch each row's destination
    // slot, so the insert loop's slot-array misses overlap with the
    // following rows' hashing.
    hash_scratch_.clear();
    hash_scratch_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Tuple& tuple = in->tuple(i);
      if (build_key_ >= tuple.size()) {
        return Status::OutOfRange("build key column out of range");
      }
      const uint64_t hash = tuple.at(build_key_).JoinHash();
      hash_scratch_.push_back(hash);
      const size_t bucket =
          static_cast<size_t>(in->bucket(i) < 0 ? 0 : in->bucket(i));
      state_[bucket].Prefetch(hash);
    }
    // Pass 3: insert.
    for (size_t i = 0; i < n; ++i) {
      const Tuple& tuple = in->tuple(i);
      const int bucket = in->bucket(i) < 0 ? 0 : in->bucket(i);
      if (TableForBucket(bucket).Insert(hash_scratch_[i], tuple)) {
        ++duplicate_build_inserts_;
        GQP_LOG_WARN << "hash join: duplicate build insert, key="
                     << tuple.at(build_key_).ToString()
                     << " bucket=" << bucket;
      }
      if (in->origin(i) < ctx->row_retained.size()) {
        ctx->row_retained[in->origin(i)] = 1;
      }
    }
    return Status::OK();
  }
  if (port == 1) {
    ctx->ChargeN(tag_, probe_cost_ms_, n);
    // Pass 1: hash the key column and prefetch each row's slot, so the
    // table's cache misses overlap with the next rows' hashing instead of
    // stalling the probe loop.
    hash_scratch_.clear();
    hash_scratch_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Tuple& tuple = in->tuple(i);
      if (probe_key_ >= tuple.size()) {
        return Status::OutOfRange("probe key column out of range");
      }
      const uint64_t hash = tuple.at(probe_key_).JoinHash();
      hash_scratch_.push_back(hash);
      const size_t bucket =
          static_cast<size_t>(in->bucket(i) < 0 ? 0 : in->bucket(i));
      if (bucket < state_.size()) state_[bucket].Prefetch(hash);
    }
    // Pass 2a: scan the (cache-resident) slot tags for each row's
    // candidate chain head; CandidateSlot prefetches the candidate's
    // entry, so the entry-vector misses of the whole batch overlap.
    cand_scratch_.clear();
    cand_scratch_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const size_t bucket =
          static_cast<size_t>(in->bucket(i) < 0 ? 0 : in->bucket(i));
      cand_scratch_.push_back(bucket < state_.size()
                                  ? state_[bucket].CandidateSlot(
                                        hash_scratch_[i])
                                  : FlatJoinTable::kNoSlot);
    }
    // Pass 2b: confirm each candidate against its (now cached) entry.
    head_scratch_.clear();
    head_scratch_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      uint32_t head = 0;
      if (cand_scratch_[i] != FlatJoinTable::kNoSlot) {
        const size_t bucket =
            static_cast<size_t>(in->bucket(i) < 0 ? 0 : in->bucket(i));
        head = state_[bucket].ConfirmHead(hash_scratch_[i],
                                          cand_scratch_[i]);
      }
      head_scratch_.push_back(head);
    }
    // Pass 3: walk the chains and emit. A short lookahead prefetches the
    // build payloads ~kLookahead rows before the emit touches them —
    // far enough to cover a memory round trip, near enough that the
    // lines are still resident when consumed (a whole-batch prefetch
    // pass floods the L2 instead).
    constexpr size_t kLookahead = 12;
    for (size_t i = 0; i < n; ++i) {
      if (i + kLookahead < n && head_scratch_[i + kLookahead] != 0) {
        const size_t pf_bucket = static_cast<size_t>(
            in->bucket(i + kLookahead) < 0 ? 0 : in->bucket(i + kLookahead));
        state_[pf_bucket].PrefetchMatchPayload(head_scratch_[i + kLookahead]);
      }
      const uint32_t head = head_scratch_[i];
      if (head == 0) continue;
      const size_t bucket =
          static_cast<size_t>(in->bucket(i) < 0 ? 0 : in->bucket(i));
      const Tuple& tuple = in->tuple(i);
      const Value& key = tuple.at(probe_key_);
      const uint32_t origin = in->origin(i);
      state_[bucket].ForEachMatchFrom(head, [&](const Tuple& build_tuple) {
        // Hash collision: the stored key is the build tuple's key column.
        if (build_tuple.at(build_key_) != key) return;
        out->Append(Tuple::Concat(out_schema_, build_tuple, tuple), -1,
                    origin);
      });
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      StrCat("hash join has no input port ", port));
}

void HashJoinOperator::PurgeBuckets(const std::vector<int>& buckets) {
  for (const int b : buckets) {
    const size_t idx = static_cast<size_t>(b < 0 ? 0 : b);
    if (idx < state_.size()) state_[idx].Clear();
  }
}

size_t HashJoinOperator::StateSize() const {
  size_t count = 0;
  for (const FlatJoinTable& table : state_) count += table.size();
  return count;
}

size_t HashJoinOperator::StateSizeForBucket(int bucket) const {
  const size_t idx = static_cast<size_t>(bucket < 0 ? 0 : bucket);
  return idx < state_.size() ? state_[idx].size() : 0;
}

// ---- HashAggregate -------------------------------------------------------

namespace {

/// Unambiguous group-key encoding: type tag + length-prefixed rendering.
std::string EncodeGroupKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    const std::string s = v.ToString();
    key.push_back(static_cast<char>('0' + static_cast<int>(v.type())));
    key += std::to_string(s.size());
    key.push_back(':');
    key += s;
  }
  return key;
}

}  // namespace

HashAggregateOperator::HashAggregateOperator(const PhysOpDesc& desc)
    : group_exprs_(desc.group_exprs),
      aggs_(desc.aggs),
      out_schema_(desc.out_schema),
      cost_ms_(desc.base_cost_ms),
      tag_(InternString(desc.cost_tag)) {}

Status HashAggregateOperator::Accumulate(GroupState* group,
                                         const Tuple& tuple,
                                         ExecContext* ctx) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    Accumulator& acc = group->accums[i];
    Value v;
    if (spec.arg != nullptr) {
      GQP_ASSIGN_OR_RETURN(v, spec.arg->Eval(tuple, ctx->functions));
      // SQL semantics: aggregates ignore nulls.
      if (v.is_null()) continue;
    }
    switch (spec.kind) {
      case AggKind::kCount:
        ++acc.count;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        ++acc.count;
        acc.sum += v.ToNumeric();
        break;
      case AggKind::kMin:
        if (!acc.has_value || v < acc.min) acc.min = v;
        acc.has_value = true;
        break;
      case AggKind::kMax:
        if (!acc.has_value || acc.max < v) acc.max = v;
        acc.has_value = true;
        break;
    }
  }
  return Status::OK();
}

Status HashAggregateOperator::Process(int port, const Tuple& tuple,
                                      int bucket, ExecContext* ctx) {
  if (port != 0) {
    return Status::InvalidArgument("hash aggregate has a single input port");
  }
  if (bucket < 0) bucket = 0;
  ctx->Charge(tag_, cost_ms_);

  std::vector<Value> group_values;
  group_values.reserve(group_exprs_.size());
  for (const ExprPtr& e : group_exprs_) {
    GQP_ASSIGN_OR_RETURN(Value v, e->Eval(tuple, ctx->functions));
    group_values.push_back(std::move(v));
  }
  const std::string key = EncodeGroupKey(group_values);
  auto [it, inserted] = state_[bucket].try_emplace(key);
  if (inserted) {
    it->second.group_values = std::move(group_values);
    it->second.accums.resize(aggs_.size());
  }
  GQP_RETURN_IF_ERROR(Accumulate(&it->second, tuple, ctx));
  ctx->retained = true;
  return Status::OK();
}

Status HashAggregateOperator::ProcessBatch(int port, TupleBatch* in,
                                           TupleBatch* out,
                                           ExecContext* ctx) {
  (void)out;  // an aggregate absorbs its batch; output comes from Finish
  if (port != 0) {
    return Status::InvalidArgument("hash aggregate has a single input port");
  }
  const size_t n = in->size();
  ctx->ChargeN(tag_, cost_ms_, n);
  std::vector<Value> group_values;
  for (size_t i = 0; i < n; ++i) {
    const Tuple& tuple = in->tuple(i);
    const int bucket = in->bucket(i) < 0 ? 0 : in->bucket(i);
    group_values.clear();
    group_values.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) {
      GQP_ASSIGN_OR_RETURN(Value v, e->Eval(tuple, ctx->functions));
      group_values.push_back(std::move(v));
    }
    const std::string key = EncodeGroupKey(group_values);
    auto [it, inserted] = state_[bucket].try_emplace(key);
    if (inserted) {
      it->second.group_values = std::move(group_values);
      it->second.accums.resize(aggs_.size());
    }
    GQP_RETURN_IF_ERROR(Accumulate(&it->second, tuple, ctx));
    if (in->origin(i) < ctx->row_retained.size()) {
      ctx->row_retained[in->origin(i)] = 1;
    }
  }
  return Status::OK();
}

Value HashAggregateOperator::Finalize(const AggSpec& spec,
                                      const Accumulator& acc) const {
  switch (spec.kind) {
    case AggKind::kCount:
      return Value(acc.count);
    case AggKind::kSum:
      if (acc.count == 0) return Value::Null();
      if (spec.result_type == DataType::kInt64) {
        return Value(static_cast<int64_t>(acc.sum));
      }
      return Value(acc.sum);
    case AggKind::kAvg:
      if (acc.count == 0) return Value::Null();
      return Value(acc.sum / static_cast<double>(acc.count));
    case AggKind::kMin:
      return acc.has_value ? acc.min : Value::Null();
    case AggKind::kMax:
      return acc.has_value ? acc.max : Value::Null();
  }
  return Value::Null();
}

Status HashAggregateOperator::Finish(ExecContext* ctx) {
  for (const auto& [bucket, groups] : state_) {
    for (const auto& [key, group] : groups) {
      ctx->Charge(tag_, cost_ms_);
      std::vector<Value> values = group.group_values;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        values.push_back(Finalize(aggs_[i], group.accums[i]));
      }
      GQP_RETURN_IF_ERROR(Emit(Tuple(out_schema_, std::move(values)), ctx));
    }
  }
  state_.clear();
  if (next_ != nullptr) return next_->Finish(ctx);
  return Status::OK();
}

void HashAggregateOperator::PurgeBuckets(const std::vector<int>& buckets) {
  for (const int b : buckets) state_.erase(b < 0 ? 0 : b);
}

size_t HashAggregateOperator::GroupCount() const {
  size_t count = 0;
  for (const auto& [bucket, groups] : state_) count += groups.size();
  return count;
}

// ---- Collect -----------------------------------------------------------

CollectOperator::CollectOperator(const PhysOpDesc& desc)
    : cost_ms_(desc.base_cost_ms), tag_(InternString(desc.cost_tag)) {}

Status CollectOperator::Process(int, const Tuple& tuple, int,
                                ExecContext* ctx) {
  ctx->Charge(tag_, cost_ms_);
  results_.push_back(tuple);
  return Status::OK();
}

Status CollectOperator::ProcessBatch(int, TupleBatch* in, TupleBatch* out,
                                     ExecContext* ctx) {
  (void)out;  // collect is a sink
  const size_t n = in->size();
  ctx->ChargeN(tag_, cost_ms_, n);
  results_.reserve(results_.size() + n);
  for (size_t i = 0; i < n; ++i) results_.push_back(in->TakeTuple(i));
  return Status::OK();
}

// ---- Factory -----------------------------------------------------------

Result<std::unique_ptr<PhysicalOperator>> MakeOperator(
    const PhysOpDesc& desc) {
  switch (desc.kind) {
    case PhysOpKind::kScan:
      return Status::InvalidArgument(
          "scans are driven by the fragment executor, not the chain");
    case PhysOpKind::kFilter:
      return std::unique_ptr<PhysicalOperator>(new FilterOperator(desc));
    case PhysOpKind::kProject:
      return std::unique_ptr<PhysicalOperator>(new ProjectOperator(desc));
    case PhysOpKind::kHashJoin:
      return std::unique_ptr<PhysicalOperator>(new HashJoinOperator(desc));
    case PhysOpKind::kOperationCall:
      return std::unique_ptr<PhysicalOperator>(
          new OperationCallOperator(desc));
    case PhysOpKind::kHashAggregate:
      return std::unique_ptr<PhysicalOperator>(
          new HashAggregateOperator(desc));
    case PhysOpKind::kCollect:
      return std::unique_ptr<PhysicalOperator>(new CollectOperator(desc));
  }
  return Status::Internal("unknown operator kind");
}

}  // namespace gqp
