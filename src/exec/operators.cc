#include "exec/operators.h"

#include <algorithm>

#include "common/interner.h"
#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

Status PhysicalOperator::Open(ExecContext*) { return Status::OK(); }

Status PhysicalOperator::FinishPort(int, ExecContext*) {
  return Status::OK();
}

Status PhysicalOperator::Finish(ExecContext* ctx) {
  if (next_ != nullptr) return next_->Finish(ctx);
  return Status::OK();
}

void PhysicalOperator::PurgeBuckets(const std::vector<int>&) {}

Status PhysicalOperator::Emit(const Tuple& tuple, ExecContext* ctx) {
  if (next_ != nullptr) return next_->Process(0, tuple, -1, ctx);
  ctx->out.push_back(tuple);
  return Status::OK();
}

// ---- Filter ------------------------------------------------------------

FilterOperator::FilterOperator(const PhysOpDesc& desc)
    : predicate_(desc.predicate),
      cost_ms_(desc.base_cost_ms),
      tag_(InternString(desc.cost_tag)) {}

Status FilterOperator::Process(int, const Tuple& tuple, int,
                               ExecContext* ctx) {
  ctx->Charge(tag_, cost_ms_);
  GQP_ASSIGN_OR_RETURN(Value v, predicate_->Eval(tuple, ctx->functions));
  if (!ValueIsTrue(v)) return Status::OK();
  return Emit(tuple, ctx);
}

// ---- Project -----------------------------------------------------------

ProjectOperator::ProjectOperator(const PhysOpDesc& desc)
    : exprs_(desc.exprs),
      out_schema_(desc.out_schema),
      cost_ms_(desc.base_cost_ms),
      tag_(InternString(desc.cost_tag)) {}

Status ProjectOperator::Process(int, const Tuple& tuple, int,
                                ExecContext* ctx) {
  ctx->Charge(tag_, cost_ms_);
  std::vector<Value> values;
  values.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    GQP_ASSIGN_OR_RETURN(Value v, e->Eval(tuple, ctx->functions));
    values.push_back(std::move(v));
  }
  return Emit(Tuple(out_schema_, std::move(values)), ctx);
}

// ---- OperationCall -----------------------------------------------------

OperationCallOperator::OperationCallOperator(const PhysOpDesc& desc)
    : ws_name_(desc.ws_name),
      arg_col_(desc.arg_col),
      out_schema_(desc.out_schema),
      cost_ms_(desc.base_cost_ms),
      tag_(InternString(desc.cost_tag)) {}

Status OperationCallOperator::Process(int, const Tuple& tuple, int,
                                      ExecContext* ctx) {
  ctx->Charge(tag_, cost_ms_);
  if (arg_col_ >= tuple.size()) {
    return Status::OutOfRange(
        StrCat("operation call argument column ", arg_col_, " out of range"));
  }
  GQP_ASSIGN_OR_RETURN(FunctionRegistry::Fn fn,
                       ctx->functions->Find(ws_name_));
  GQP_ASSIGN_OR_RETURN(Value result, fn({tuple.at(arg_col_)}));
  std::vector<Value> values(tuple.data(), tuple.data() + tuple.size());
  values.push_back(std::move(result));
  return Emit(Tuple(out_schema_, std::move(values)), ctx);
}

// ---- HashJoin ----------------------------------------------------------

HashJoinOperator::HashJoinOperator(const PhysOpDesc& desc)
    : build_key_(desc.build_key),
      probe_key_(desc.probe_key),
      out_schema_(desc.out_schema),
      probe_cost_ms_(desc.base_cost_ms),
      build_cost_ms_(desc.build_cost_ms),
      tag_(InternString(desc.cost_tag)),
      bucket_reserve_hint_(
          desc.estimated_build_rows /
              static_cast<size_t>(std::max(desc.build_partitions, 1)) +
          1) {}

FlatJoinTable& HashJoinOperator::TableForBucket(int bucket) {
  if (static_cast<size_t>(bucket) >= state_.size()) {
    state_.resize(static_cast<size_t>(bucket) + 1);
  }
  FlatJoinTable& table = state_[static_cast<size_t>(bucket)];
  if (table.empty()) table.Reserve(bucket_reserve_hint_);
  return table;
}

Status HashJoinOperator::Process(int port, const Tuple& tuple, int bucket,
                                 ExecContext* ctx) {
  if (bucket < 0) bucket = 0;  // single-consumer (unpartitioned) execution
  if (port == 0) {
    ctx->Charge(tag_, build_cost_ms_);
    if (build_key_ >= tuple.size()) {
      return Status::OutOfRange("build key column out of range");
    }
    const Value& key = tuple.at(build_key_);
    if (TableForBucket(bucket).Insert(key.Hash(), key, tuple)) {
      ++duplicate_build_inserts_;
      GQP_LOG_WARN << "hash join: duplicate build insert, key="
                   << key.ToString() << " bucket=" << bucket;
    }
    ctx->retained = true;
    return Status::OK();
  }
  if (port == 1) {
    ctx->Charge(tag_, probe_cost_ms_);
    if (probe_key_ >= tuple.size()) {
      return Status::OutOfRange("probe key column out of range");
    }
    const Value& key = tuple.at(probe_key_);
    if (static_cast<size_t>(bucket) >= state_.size()) return Status::OK();
    Status status = Status::OK();
    state_[static_cast<size_t>(bucket)].ForEachMatch(
        key.Hash(), [&](const Value& build_key, const Tuple& build_tuple) {
          if (!status.ok() || build_key != key) return;  // hash collision
          status = Emit(Tuple::Concat(out_schema_, build_tuple, tuple), ctx);
        });
    return status;
  }
  return Status::InvalidArgument(
      StrCat("hash join has no input port ", port));
}

void HashJoinOperator::PurgeBuckets(const std::vector<int>& buckets) {
  for (const int b : buckets) {
    const size_t idx = static_cast<size_t>(b < 0 ? 0 : b);
    if (idx < state_.size()) state_[idx].Clear();
  }
}

size_t HashJoinOperator::StateSize() const {
  size_t count = 0;
  for (const FlatJoinTable& table : state_) count += table.size();
  return count;
}

size_t HashJoinOperator::StateSizeForBucket(int bucket) const {
  const size_t idx = static_cast<size_t>(bucket < 0 ? 0 : bucket);
  return idx < state_.size() ? state_[idx].size() : 0;
}

// ---- HashAggregate -------------------------------------------------------

namespace {

/// Unambiguous group-key encoding: type tag + length-prefixed rendering.
std::string EncodeGroupKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    const std::string s = v.ToString();
    key.push_back(static_cast<char>('0' + static_cast<int>(v.type())));
    key += std::to_string(s.size());
    key.push_back(':');
    key += s;
  }
  return key;
}

}  // namespace

HashAggregateOperator::HashAggregateOperator(const PhysOpDesc& desc)
    : group_exprs_(desc.group_exprs),
      aggs_(desc.aggs),
      out_schema_(desc.out_schema),
      cost_ms_(desc.base_cost_ms),
      tag_(InternString(desc.cost_tag)) {}

Status HashAggregateOperator::Accumulate(GroupState* group,
                                         const Tuple& tuple,
                                         ExecContext* ctx) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    Accumulator& acc = group->accums[i];
    Value v;
    if (spec.arg != nullptr) {
      GQP_ASSIGN_OR_RETURN(v, spec.arg->Eval(tuple, ctx->functions));
      // SQL semantics: aggregates ignore nulls.
      if (v.is_null()) continue;
    }
    switch (spec.kind) {
      case AggKind::kCount:
        ++acc.count;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        ++acc.count;
        acc.sum += v.ToNumeric();
        break;
      case AggKind::kMin:
        if (!acc.has_value || v < acc.min) acc.min = v;
        acc.has_value = true;
        break;
      case AggKind::kMax:
        if (!acc.has_value || acc.max < v) acc.max = v;
        acc.has_value = true;
        break;
    }
  }
  return Status::OK();
}

Status HashAggregateOperator::Process(int port, const Tuple& tuple,
                                      int bucket, ExecContext* ctx) {
  if (port != 0) {
    return Status::InvalidArgument("hash aggregate has a single input port");
  }
  if (bucket < 0) bucket = 0;
  ctx->Charge(tag_, cost_ms_);

  std::vector<Value> group_values;
  group_values.reserve(group_exprs_.size());
  for (const ExprPtr& e : group_exprs_) {
    GQP_ASSIGN_OR_RETURN(Value v, e->Eval(tuple, ctx->functions));
    group_values.push_back(std::move(v));
  }
  const std::string key = EncodeGroupKey(group_values);
  auto [it, inserted] = state_[bucket].try_emplace(key);
  if (inserted) {
    it->second.group_values = std::move(group_values);
    it->second.accums.resize(aggs_.size());
  }
  GQP_RETURN_IF_ERROR(Accumulate(&it->second, tuple, ctx));
  ctx->retained = true;
  return Status::OK();
}

Value HashAggregateOperator::Finalize(const AggSpec& spec,
                                      const Accumulator& acc) const {
  switch (spec.kind) {
    case AggKind::kCount:
      return Value(acc.count);
    case AggKind::kSum:
      if (acc.count == 0) return Value::Null();
      if (spec.result_type == DataType::kInt64) {
        return Value(static_cast<int64_t>(acc.sum));
      }
      return Value(acc.sum);
    case AggKind::kAvg:
      if (acc.count == 0) return Value::Null();
      return Value(acc.sum / static_cast<double>(acc.count));
    case AggKind::kMin:
      return acc.has_value ? acc.min : Value::Null();
    case AggKind::kMax:
      return acc.has_value ? acc.max : Value::Null();
  }
  return Value::Null();
}

Status HashAggregateOperator::Finish(ExecContext* ctx) {
  for (const auto& [bucket, groups] : state_) {
    for (const auto& [key, group] : groups) {
      ctx->Charge(tag_, cost_ms_);
      std::vector<Value> values = group.group_values;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        values.push_back(Finalize(aggs_[i], group.accums[i]));
      }
      GQP_RETURN_IF_ERROR(Emit(Tuple(out_schema_, std::move(values)), ctx));
    }
  }
  state_.clear();
  if (next_ != nullptr) return next_->Finish(ctx);
  return Status::OK();
}

void HashAggregateOperator::PurgeBuckets(const std::vector<int>& buckets) {
  for (const int b : buckets) state_.erase(b < 0 ? 0 : b);
}

size_t HashAggregateOperator::GroupCount() const {
  size_t count = 0;
  for (const auto& [bucket, groups] : state_) count += groups.size();
  return count;
}

// ---- Collect -----------------------------------------------------------

CollectOperator::CollectOperator(const PhysOpDesc& desc)
    : cost_ms_(desc.base_cost_ms), tag_(InternString(desc.cost_tag)) {}

Status CollectOperator::Process(int, const Tuple& tuple, int,
                                ExecContext* ctx) {
  ctx->Charge(tag_, cost_ms_);
  results_.push_back(tuple);
  return Status::OK();
}

// ---- Factory -----------------------------------------------------------

Result<std::unique_ptr<PhysicalOperator>> MakeOperator(
    const PhysOpDesc& desc) {
  switch (desc.kind) {
    case PhysOpKind::kScan:
      return Status::InvalidArgument(
          "scans are driven by the fragment executor, not the chain");
    case PhysOpKind::kFilter:
      return std::unique_ptr<PhysicalOperator>(new FilterOperator(desc));
    case PhysOpKind::kProject:
      return std::unique_ptr<PhysicalOperator>(new ProjectOperator(desc));
    case PhysOpKind::kHashJoin:
      return std::unique_ptr<PhysicalOperator>(new HashJoinOperator(desc));
    case PhysOpKind::kOperationCall:
      return std::unique_ptr<PhysicalOperator>(
          new OperationCallOperator(desc));
    case PhysOpKind::kHashAggregate:
      return std::unique_ptr<PhysicalOperator>(
          new HashAggregateOperator(desc));
    case PhysOpKind::kCollect:
      return std::unique_ptr<PhysicalOperator>(new CollectOperator(desc));
  }
  return Status::Internal("unknown operator kind");
}

}  // namespace gqp
