// Coordinator-epoch fence (DESIGN.md §D14). Every coordinator command
// that mutates executor liveness state (ProducerLost / ConsumerLost /
// recovery StateMoveRequests / query releases) is stamped with the
// coordinator epoch it was issued under. Executors track the highest
// epoch they have been told about and drop commands from older epochs:
// after a failover, in-flight commands of the dead primary must not race
// the standby's reconciliation. Epoch 0 is the pre-failover world — all
// legacy traffic carries it and is always admitted, so the fence is free
// when failover is disabled.

#ifndef GRIDQP_EXEC_COORDINATOR_EPOCH_H_
#define GRIDQP_EXEC_COORDINATOR_EPOCH_H_

#include <algorithm>
#include <cstdint>

namespace gqp {

class CoordinatorEpochGuard {
 public:
  /// Raises the fence. Epochs only move forward.
  void Advance(uint64_t epoch) { current_ = std::max(current_, epoch); }

  /// True when a command stamped `epoch` may be applied. Commands from a
  /// NEWER epoch than the fence has seen are admitted (and advance the
  /// fence): the command itself is proof the epoch exists.
  bool Admit(uint64_t epoch) {
    if (epoch < current_) {
      ++stale_dropped_;
      return false;
    }
    current_ = std::max(current_, epoch);
    return true;
  }

  uint64_t current() const { return current_; }
  uint64_t stale_dropped() const { return stale_dropped_; }

 private:
  uint64_t current_ = 0;
  uint64_t stale_dropped_ = 0;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_COORDINATOR_EPOCH_H_
