// Fault-tolerance state of a fragment instance (DESIGN.md §D12): which
// input tuples were processed or retained in operator state, when their
// acknowledgments may go upstream (the cascading-checkpoint protocol),
// and the bookkeeping of the state-move/recovery rounds that park, purge
// and restore partition state. The composition root (FragmentExecutor)
// drives the protocol; this component owns every durable decision about
// "is this tuple still needed".

#ifndef GRIDQP_EXEC_STATE_MANAGER_H_
#define GRIDQP_EXEC_STATE_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exec/coordinator_epoch.h"
#include "exec/exchange_messages.h"
#include "exec/instance_plan.h"
#include "ft/recovery_log.h"
#include "grid/node.h"

namespace gqp {

class OperatorDriver;
class PortQueueManager;

class StateManager {
 public:
  struct Hooks {
    /// Delivers an acknowledgment batch over the bus.
    std::function<Status(const Address&, PayloadPtr)> send_to;
    /// Reports an acknowledgment-send failure to the executor.
    std::function<void(const Status&)> fail;
  };

  StateManager(GridNode* node, const ExecConfig* config,
               const SubplanId& self, FragmentStats* stats, Hooks hooks);
  ~StateManager();

  void AddPort();
  /// Ensures tracking exists for the producer link (same registration
  /// order as PortQueueManager, so producer-map iteration stays aligned
  /// with the pre-split executor).
  void RegisterProducer(int port, const std::string& key,
                        const Address& address, int exchange_id);

  // --- processed / retained / acknowledgment cascade --------------------
  /// Records the outcome of one processed input tuple. Retained
  /// (state-resident) tuples are acknowledged only once the fragment has
  /// finished and its outputs are durable downstream (AckAllRetained);
  /// until then they are the recovery copy of the state. Non-retained
  /// tuples enter the processed set immediately (state moves must not
  /// resend them) but their acknowledgment cascades: it is sent only once
  /// all outputs derived from the tuple are acknowledged downstream.
  void RecordProcessed(int port, const std::string& key, uint64_t seq,
                       int bucket, bool retained,
                       const std::vector<uint64_t>& output_seqs,
                       bool has_producer, bool finished);
  /// Marks an input tuple safe (enqueues its acknowledgment).
  void AckInput(int port, const std::string& key, uint64_t seq,
                bool finished);
  /// Cascading acknowledgments: outputs acked downstream release inputs.
  void OnOutputsAcked(const std::vector<uint64_t>& seqs, bool finished);
  /// Releases every retained input (the fragment finished and its
  /// recovery log drained: outputs are durable).
  void AckAllRetained();
  void FlushAcks(int port, const std::string& key, bool force);
  /// Force-flushes every producer's pending acknowledgments (completion).
  void FlushAllAcks();

  /// Installs the instance's coordinator-epoch fence (D14). Null: every
  /// round admitted.
  void set_epoch_guard(CoordinatorEpochGuard* guard) { epoch_guard_ = guard; }

  // --- state-move / recovery rounds -------------------------------------
  /// Applies a producer's StateMoveRequest (the state-move/purge
  /// protocol): opens the round, purges in-scope queued tuples (releasing
  /// their credit), freezes/thaws/awaits buckets on stateful fragments,
  /// and replies with the seqs this consumer already holds. The caller
  /// has already fenced stale requests and registered the producer;
  /// rounds stamped with a stale coordinator epoch are dropped here (a
  /// deposed primary's recovery must not purge state, D14).
  void ApplyStateMove(const StateMoveRequestPayload& request,
                      const std::string& key, const Address& from,
                      bool stateful, PortQueueManager* queues,
                      OperatorDriver* driver);
  /// Applies a producer's RestoreComplete marker: closes the round and,
  /// on the build port, clears restored buckets and unparks probe tuples
  /// that became runnable. The caller has already fenced stale markers.
  void ApplyRestoreComplete(const RestoreCompletePayload& restore,
                            const std::string& key, bool stateful,
                            PortQueueManager* queues);

  void OpenRound(const std::string& key, uint64_t round);
  void CloseRound(const std::string& key, uint64_t round);
  /// Abandons a lost producer's open rounds: no RestoreComplete will ever
  /// arrive, and the replacement delivery comes through recovery.
  void AbandonProducer(const std::string& key);
  bool rounds_open() const { return !open_state_rounds_.empty(); }
  /// No state-move activity in flight (completion precondition).
  bool quiescent() const {
    return awaiting_restore_.empty() && open_state_rounds_.empty();
  }

  void BeginBuildRecovery(const std::string& key, uint64_t round);
  void EndBuildRecovery(const std::string& key, uint64_t round);
  bool build_recovery_empty() const { return build_recovery_rounds_.empty(); }

  void Freeze(int bucket) { frozen_lost_.insert(bucket); }
  void Thaw(int bucket) { frozen_lost_.erase(bucket); }
  bool Frozen(int bucket) const { return frozen_lost_.count(bucket) > 0; }
  void AwaitRestore(int bucket) { awaiting_restore_.insert(bucket); }
  void RestoreBucket(int bucket) { awaiting_restore_.erase(bucket); }
  void ClearAwaitingRestore() { awaiting_restore_.clear(); }
  bool AwaitingRestore(int bucket) const {
    return awaiting_restore_.count(bucket) > 0;
  }
  size_t awaiting_restore_count() const { return awaiting_restore_.size(); }
  size_t frozen_count() const { return frozen_lost_.size(); }

  /// Drops retained entries whose bucket state was purged (moved away):
  /// the bucket's new owner becomes responsible for them, and forgetting
  /// them keeps a later ack of ours from pruning the producer's only
  /// copy.
  void PruneRetained(int port, const std::string& key,
                     const std::vector<int>& buckets_lost);
  /// Sorted processed seqs + sorted retained seqs of kept buckets, for a
  /// StateMoveReply (nothing this consumer holds may be resent).
  void BuildReply(int port, const std::string& key,
                  const std::vector<int>& buckets_lost,
                  std::vector<uint64_t>* processed,
                  std::vector<uint64_t>* retained) const;

  // --- introspection ----------------------------------------------------
  std::unordered_map<std::string, std::vector<uint64_t>> ProcessedSeqs(
      int port) const;
  size_t AcksPendingTotal(int port) const;
  /// Appends " open_rounds={...}" etc. to a DebugString.
  std::string DebugSuffix() const;

 private:
  struct Entry {
    Address address;
    std::unique_ptr<AckBatcher> acks;
    /// Every seq of this producer whose processing completed here (never
    /// resent by state moves).
    std::unordered_set<uint64_t> processed;
    /// A state-resident (retained) input and the bucket its state lives
    /// in: it stays "needed" until the fragment has finished AND all of
    /// its outputs are acknowledged downstream — until then it is the
    /// only copy from which the state could be rebuilt after a crash.
    struct RetainedInput {
      uint64_t seq;
      int bucket;
    };
    std::vector<RetainedInput> retained_unacked;
    int exchange_id = -1;
  };

  /// Cascading-acknowledgment bookkeeping: an input tuple is acknowledged
  /// upstream only when every output tuple derived from it has been
  /// acknowledged by our consumers ("checkpoints are returned when the
  /// tuples are not needed any more by the operators higher up"). Without
  /// this, a crash could lose results that were acknowledged but still
  /// buffered in the dead machine's exchange.
  struct PendingInput {
    int port = 0;
    std::string producer_key;
    uint64_t seq = 0;
    size_t remaining_outputs = 0;
  };

  GridNode* node_;
  const ExecConfig* config_;
  SubplanId self_;
  FragmentStats* stats_;
  Hooks hooks_;
  CoordinatorEpochGuard* epoch_guard_ = nullptr;

  std::vector<std::unordered_map<std::string, Entry>> ports_;

  /// State-move rounds announced by a producer whose RestoreComplete has
  /// not arrived yet. While any round is open, resent tuples may still be
  /// in flight (they precede the RestoreComplete on the producer's link),
  /// so the fragment must not finish.
  std::map<std::string, std::set<uint64_t>> open_state_rounds_;

  /// Buckets whose build state is being restored here (probe tuples for
  /// them are parked). Only non-empty on stateful fragments.
  std::unordered_set<int> awaiting_restore_;
  /// Buckets this instance lost in an in-flight round (their probe tuples
  /// are parked until the probe-side purge arrives).
  std::unordered_set<int> frozen_lost_;
  /// Open failure-recovery rounds on the build port, as (producer key,
  /// round) pairs. A recovery purge discards queued build tuples of EVERY
  /// bucket — including ones this instance keeps — so until the
  /// producer's resends land (RestoreComplete), the build state may be
  /// missing arbitrary rows and no probe tuple may run at all.
  std::set<std::pair<std::string, uint64_t>> build_recovery_rounds_;

  /// output seq -> the input awaiting it.
  std::unordered_map<uint64_t, std::shared_ptr<PendingInput>>
      output_to_input_;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_STATE_MANAGER_H_
