// Egress adapter of a fragment instance (DESIGN.md §D12): wraps the
// ExchangeProducer, wiring its callbacks to the grid node (CPU charges),
// the network model (transfer times for M2 monitoring), the MED (M2
// emission) and the Responder (redistribution outcomes). The composition
// root supplies only bus delivery and the output-ack cascade.

#ifndef GRIDQP_EXEC_EGRESS_H_
#define GRIDQP_EXEC_EGRESS_H_

#include <functional>
#include <memory>

#include "exec/coordinator_epoch.h"
#include "exec/exchange_producer.h"
#include "exec/instance_plan.h"
#include "grid/node.h"
#include "net/network.h"

namespace gqp {

class EgressAdapter {
 public:
  struct Hooks {
    /// Delivers a payload over the bus.
    std::function<Status(const Address&, PayloadPtr)> send_to;
    /// Output seqs acknowledged downstream (cascading acknowledgments).
    std::function<void(const std::vector<uint64_t>& seqs)> on_acked;
    /// Reports a delivery error (the executor records it, keeps running).
    std::function<void(const Status&)> fail;
  };

  EgressAdapter(GridNode* node, Network* network,
                const FragmentInstancePlan* plan, FragmentStats* stats,
                Hooks hooks);
  ~EgressAdapter();

  /// Constructs and opens the exchange producer for plan->output.
  Status Open();

  /// Flow-control gate (D11): true when the output window is exhausted
  /// and the driver must park. Ships partially-filled buffers first — a
  /// window below `buffer_tuples` would otherwise strand tuples in
  /// buffers that can never fill, and the credit they hold could never
  /// be granted back (deadlock).
  bool BlockedOnCredit();

  /// Offers staged output tuples to the producer, clearing `out`.
  /// Returns the assigned output seqs (short on delivery failure).
  std::vector<uint64_t> Deliver(std::vector<Tuple>* out);

  /// Installs the instance's coordinator-epoch fence (D14). Null: every
  /// command admitted.
  void set_epoch_guard(CoordinatorEpochGuard* guard) { epoch_guard_ = guard; }

  /// Producer-protocol forwarding (failures are logged, not fatal).
  void HandleRedistribute(const RedistributeRequestPayload& request);
  void HandleStateMoveReply(const StateMoveReplyPayload& reply);

  /// Epoch-checked ConsumerLost (D14): drops the consumer from the
  /// producer's routing and in-flight rounds, unless the command carries
  /// a stale coordinator epoch. Returns true when applied; protocol
  /// errors go through hooks_.fail.
  bool HandleConsumerLost(const ConsumerLostPayload& lost);

  ExchangeProducer* producer() { return producer_.get(); }
  const ExchangeProducer* producer() const { return producer_.get(); }

 private:
  GridNode* node_;
  Network* network_;
  const FragmentInstancePlan* plan_;
  FragmentStats* stats_;
  Hooks hooks_;
  CoordinatorEpochGuard* epoch_guard_ = nullptr;
  std::unique_ptr<ExchangeProducer> producer_;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_EGRESS_H_
