#include "exec/egress.h"

#include "common/logging.h"
#include "monitor/monitoring_events.h"

namespace gqp {

EgressAdapter::EgressAdapter(GridNode* node, Network* network,
                             const FragmentInstancePlan* plan,
                             FragmentStats* stats, Hooks hooks)
    : node_(node),
      network_(network),
      plan_(plan),
      stats_(stats),
      hooks_(std::move(hooks)) {}

EgressAdapter::~EgressAdapter() = default;

Status EgressAdapter::Open() {
  ExchangeProducer::Hooks hooks;
  hooks.send = [this](int idx, PayloadPtr payload) {
    return hooks_.send_to(
        plan_->output->consumers[static_cast<size_t>(idx)].address,
        std::move(payload));
  };
  hooks.submit_work = [this](double cost_ms, std::function<void()> done) {
    node_->SubmitWork(kExchangeTag, cost_ms,
                      [done = std::move(done)]() {
                        if (done) done();
                      });
  };
  hooks.on_buffer_sent = [this](int idx, double send_cost_ms, size_t tuples,
                                size_t wire_bytes) {
    ++stats_->m2_sent;
    if (!plan_->config.monitoring_enabled ||
        plan_->adaptivity.med.host == kInvalidHost) {
      return;
    }
    const ConsumerEndpoint& consumer =
        plan_->output->consumers[static_cast<size_t>(idx)];
    const double transfer = network_->TransferTime(
        node_->id(), consumer.address.host, wire_bytes);
    node_->SubmitWork(kExchangeTag, plan_->config.monitor_emit_cost_ms,
                      nullptr);
    const Status s = hooks_.send_to(
        plan_->adaptivity.med,
        std::make_shared<M2Payload>(plan_->id, consumer.id,
                                    send_cost_ms + transfer, tuples));
    if (!s.ok()) {
      GQP_LOG_WARN << "M2 emission failed: " << s.ToString();
    }
  };
  hooks.on_acked = [this](const std::vector<uint64_t>& seqs) {
    hooks_.on_acked(seqs);
  };
  hooks.on_round_done = [this](uint64_t round, bool applied) {
    if (plan_->adaptivity.responder.host == kInvalidHost) return;
    const Status s =
        hooks_.send_to(plan_->adaptivity.responder,
                       std::make_shared<RedistributeOutcomePayload>(
                           round, plan_->id, applied));
    if (!s.ok()) {
      GQP_LOG_WARN << "redistribute outcome report failed: "
                   << s.ToString();
    }
  };
  producer_ = std::make_unique<ExchangeProducer>(
      plan_->id, *plan_->output, plan_->config, std::move(hooks));
  // The producer stamps its recovery StateMoveRequests with the epoch it
  // was deployed under, so downstream fences can tell its rounds from a
  // deposed coordinator's (D14).
  producer_->set_coordinator_epoch(plan_->coordinator_epoch);
  return producer_->Open();
}

bool EgressAdapter::HandleConsumerLost(const ConsumerLostPayload& lost) {
  if (epoch_guard_ != nullptr &&
      !epoch_guard_->Admit(lost.coordinator_epoch())) {
    return false;
  }
  if (producer_ == nullptr) return false;
  const Status s = producer_->HandleConsumerLost(lost.consumer());
  if (!s.ok()) hooks_.fail(s);
  return true;
}

std::vector<uint64_t> EgressAdapter::Deliver(std::vector<Tuple>* out) {
  std::vector<uint64_t> seqs;
  seqs.reserve(out->size());
  for (const Tuple& t : *out) {
    Result<uint64_t> seq = producer_->Offer(t);
    if (!seq.ok()) {
      hooks_.fail(seq.status());
      break;
    }
    seqs.push_back(*seq);
  }
  out->clear();
  return seqs;
}

void EgressAdapter::HandleRedistribute(
    const RedistributeRequestPayload& request) {
  const Status s = producer_->HandleRedistribute(request);
  if (!s.ok()) {
    GQP_LOG_WARN << "fragment " << plan_->id.ToString()
                 << ": redistribute failed: " << s.ToString();
  }
}

void EgressAdapter::HandleStateMoveReply(const StateMoveReplyPayload& reply) {
  const Status s = producer_->HandleStateMoveReply(reply);
  if (!s.ok()) {
    GQP_LOG_WARN << "fragment " << plan_->id.ToString()
                 << ": state-move reply failed: " << s.ToString();
  }
}

bool EgressAdapter::BlockedOnCredit() {
  if (producer_->HasCreditHeadroom()) return false;
  producer_->NoteCreditBlocked();
  const Status flush = producer_->FlushPartialBuffers();
  if (!flush.ok()) {
    GQP_LOG_WARN << "credit-parked flush failed: " << flush.ToString();
  }
  return true;
}

}  // namespace gqp
