#include "dqp/mirror_log.h"

#include <utility>

#include "common/strings.h"

namespace gqp {
namespace {

std::string_view KindName(MirrorEntryKind kind) {
  switch (kind) {
    case MirrorEntryKind::kQueryRegistered:
      return "register";
    case MirrorEntryKind::kDeployed:
      return "deploy";
    case MirrorEntryKind::kEpochBump:
      return "epoch";
    case MirrorEntryKind::kFailureDecision:
      return "failure";
    case MirrorEntryKind::kWeightsApplied:
      return "weights";
    case MirrorEntryKind::kQueryComplete:
      return "complete";
    case MirrorEntryKind::kQueryTerminated:
      return "terminate";
    case MirrorEntryKind::kQueryQueued:
      return "queued";
    case MirrorEntryKind::kQueryRejected:
      return "rejected";
  }
  return "?";
}

void FnvMix(uint64_t* hash, const std::string& bytes) {
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  for (const char c : bytes) {
    *hash ^= static_cast<uint8_t>(c);
    *hash *= kPrime;
  }
}

}  // namespace

std::string MirrorEntry::Describe() const {
  std::string out =
      StrCat("#", seq, ":", KindName(kind), ":q", query_id);
  switch (kind) {
    case MirrorEntryKind::kQueryRegistered:
      out += StrCat("(", sql.size(), "B sql, t=", submit_time_ms,
                    ", deadline=", deadline_ms, ")");
      break;
    case MirrorEntryKind::kDeployed:
      out += StrCat("(window=", credit_window_bytes, ")");
      break;
    case MirrorEntryKind::kEpochBump:
      out += StrCat("(epoch=", detector_epoch, ")");
      break;
    case MirrorEntryKind::kFailureDecision:
      out += StrCat("(host=", failed_host, ")");
      break;
    case MirrorEntryKind::kWeightsApplied: {
      out += StrCat("(round=", round, ", w=[");
      for (size_t i = 0; i < weights.size(); ++i) {
        if (i > 0) out += ",";
        out += StrCat(weights[i]);
      }
      out += "])";
      break;
    }
    case MirrorEntryKind::kQueryComplete:
    case MirrorEntryKind::kQueryTerminated:
      out += StrCat("(rows=", rows.size(), ", t=", completion_time_ms, ")");
      break;
    case MirrorEntryKind::kQueryQueued:
      out += StrCat("(", sql.size(), "B sql, t=", submit_time_ms,
                    ", deadline=", deadline_ms, ", tenant=", tenant, ")");
      break;
    case MirrorEntryKind::kQueryRejected:
      out += StrCat("(reason=", reject_reason, ", t=", completion_time_ms,
                    ", tenant=", tenant, ")");
      break;
  }
  return out;
}

uint64_t MirrorLog::Append(MirrorEntry entry) {
  entry.seq = next_seq_++;
  pending_.push_back(std::move(entry));
  return pending_.back().seq;
}

void MirrorLog::Acknowledge(uint64_t seq) {
  if (seq <= acked_seq_) return;
  acked_seq_ = seq;
  while (!pending_.empty() && pending_.front().seq <= seq) {
    pending_.pop_front();
    ++truncated_;
  }
}

uint64_t MirrorState::Apply(const MirrorEntry& entry) {
  if (entry.seq <= applied_seq_) return applied_seq_;  // duplicate
  if (entry.seq != applied_seq_ + 1) {
    pending_.emplace(entry.seq, entry);  // hold back until the gap fills
    return applied_seq_;
  }
  ApplyInOrder(entry);
  applied_seq_ = entry.seq;
  // Drain held-back entries that the new frontier unblocked.
  auto it = pending_.begin();
  while (it != pending_.end() && it->first == applied_seq_ + 1) {
    ApplyInOrder(it->second);
    applied_seq_ = it->first;
    it = pending_.erase(it);
  }
  return applied_seq_;
}

void MirrorState::ApplyInOrder(const MirrorEntry& entry) {
  switch (entry.kind) {
    case MirrorEntryKind::kQueryRegistered: {
      MirroredQuery q;
      q.id = entry.query_id;
      q.sql = entry.sql;
      q.adaptivity = entry.adaptivity;
      q.exec = entry.exec;
      q.optimizer = entry.optimizer;
      q.scheduler = entry.scheduler;
      q.submit_time_ms = entry.submit_time_ms;
      q.deadline_ms = entry.deadline_ms;
      q.tenant = entry.tenant;
      queries_[entry.query_id] = std::move(q);
      max_query_id_ = std::max(max_query_id_, entry.query_id);
      break;
    }
    case MirrorEntryKind::kQueryQueued: {
      MirroredQuery q;
      q.id = entry.query_id;
      q.sql = entry.sql;
      q.adaptivity = entry.adaptivity;
      q.exec = entry.exec;
      q.optimizer = entry.optimizer;
      q.scheduler = entry.scheduler;
      q.submit_time_ms = entry.submit_time_ms;
      q.deadline_ms = entry.deadline_ms;
      q.tenant = entry.tenant;
      q.queued_pending = true;
      queries_[entry.query_id] = std::move(q);
      max_query_id_ = std::max(max_query_id_, entry.query_id);
      break;
    }
    case MirrorEntryKind::kQueryRejected: {
      auto it = queries_.find(entry.query_id);
      if (it == queries_.end()) {
        // Rejected before any queue entry was mirrored (queue-full).
        MirroredQuery q;
        q.id = entry.query_id;
        q.tenant = entry.tenant;
        it = queries_.emplace(entry.query_id, std::move(q)).first;
        max_query_id_ = std::max(max_query_id_, entry.query_id);
      }
      it->second.queued_pending = false;
      it->second.rejected = true;
      it->second.reject_reason = entry.reject_reason;
      it->second.completion_time_ms = entry.completion_time_ms;
      break;
    }
    case MirrorEntryKind::kDeployed: {
      auto it = queries_.find(entry.query_id);
      if (it != queries_.end()) {
        it->second.deployed = true;
        it->second.credit_window_bytes = entry.credit_window_bytes;
      }
      break;
    }
    case MirrorEntryKind::kEpochBump:
      detector_epoch_ = std::max(detector_epoch_, entry.detector_epoch);
      break;
    case MirrorEntryKind::kFailureDecision:
      ++failure_decisions_[entry.failed_host];
      break;
    case MirrorEntryKind::kWeightsApplied: {
      auto it = queries_.find(entry.query_id);
      if (it != queries_.end()) {
        it->second.weights_round = entry.round;
        it->second.last_weights = entry.weights;
      }
      break;
    }
    case MirrorEntryKind::kQueryComplete: {
      auto it = queries_.find(entry.query_id);
      if (it != queries_.end()) {
        it->second.complete = true;
        it->second.completion_time_ms = entry.completion_time_ms;
        it->second.rows = entry.rows;
      }
      break;
    }
    case MirrorEntryKind::kQueryTerminated: {
      auto it = queries_.find(entry.query_id);
      if (it != queries_.end()) {
        it->second.terminated = true;
        it->second.completion_time_ms = entry.completion_time_ms;
        it->second.rows = entry.rows;
      }
      break;
    }
  }
}

const MirroredQuery* MirrorState::Find(int query_id) const {
  auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : &it->second;
}

std::vector<int> MirrorState::IncompleteQueries() const {
  std::vector<int> out;
  for (const auto& [id, q] : queries_) {
    if (!q.complete && !q.terminated && !q.rejected && !q.queued_pending) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<int> MirrorState::QueuedQueries() const {
  std::vector<int> out;
  for (const auto& [id, q] : queries_) {
    if (q.queued_pending && !q.complete && !q.terminated && !q.rejected) {
      out.push_back(id);
    }
  }
  return out;
}

uint64_t MirrorState::Fingerprint() const {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  FnvMix(&hash, StrCat("seq=", applied_seq_, ";epoch=", detector_epoch_));
  for (const auto& [host, count] : failure_decisions_) {
    FnvMix(&hash, StrCat(";fail:", host, "x", count));
  }
  for (const auto& [id, q] : queries_) {
    FnvMix(&hash,
           StrCat(";q", id, ":", q.sql, ":t", q.submit_time_ms, ":dl",
                  q.deadline_ms, ":dep", q.deployed ? 1 : 0, ":win",
                  q.credit_window_bytes, ":c", q.complete ? 1 : 0, ":term",
                  q.terminated ? 1 : 0, ":ct", q.completion_time_ms, ":round",
                  q.weights_round, ":ten", q.tenant, ":qd",
                  q.queued_pending ? 1 : 0, ":rej", q.rejected ? 1 : 0, ":rr",
                  q.reject_reason));
    for (const double w : q.last_weights) FnvMix(&hash, StrCat(",", w));
    for (const Tuple& row : q.rows) FnvMix(&hash, row.ToString());
  }
  return hash;
}

}  // namespace gqp
