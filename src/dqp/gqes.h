// GQES — Grid Query Evaluation Service. One per machine. Receives plan
// fragments from the GDQS, instantiates FragmentExecutors (the query
// engine), and — in its adaptive configuration (AGQES) — hosts the site's
// MonitoringEventDetector. Tables exposed by local Grid Data Services are
// registered with the GQES of their machine.

#ifndef GRIDQP_DQP_GQES_H_
#define GRIDQP_DQP_GQES_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/fragment_executor.h"
#include "grid/node.h"
#include "monitor/monitoring_event_detector.h"
#include "rpc/service.h"
#include "storage/table.h"

namespace gqp {

/// Failover-related counters of one GQES (DESIGN.md §D14).
struct GqesStats {
  /// Commands dropped because they carried a stale coordinator epoch.
  uint64_t stale_epoch_dropped = 0;
  /// CoordinatorEpoch announcements that advanced the local epoch.
  uint64_t epoch_updates = 0;
  /// Reconciliation probes answered.
  uint64_t probes_answered = 0;
};

/// \brief A (possibly adaptive) query-evaluation service.
class Gqes : public GridService {
 public:
  /// When `adaptive` is true the service creates a local
  /// MonitoringEventDetector (endpoint "med" on this host), making it an
  /// AGQES.
  Gqes(MessageBus* bus, GridNode* node, Network* network, bool adaptive,
       MonitoringEventDetectorConfig med_config = {});
  ~Gqes() override;

  /// Registers the GQES endpoint (and the MED's, when adaptive).
  Status StartService();

  /// Exposes a local table (the machine's Grid Data Service).
  void RegisterTable(TablePtr table);

  /// The local MED address ({host, "med"}); invalid when not adaptive.
  Address med_address() const;

  /// Executor lookup (tests, stats harvesting). Null when unknown.
  FragmentExecutor* FindExecutor(const SubplanId& id) const;
  std::vector<FragmentExecutor*> Executors() const;
  MonitoringEventDetector* med() const { return med_.get(); }
  GridNode* node() const { return node_; }

  /// Abandons all executors of a query: they turn inert and drop out of
  /// Executors(), but stay alive until the GQES is destroyed (in-flight
  /// node work still holds callbacks into them).
  void ReleaseQuery(int query_id);

  /// Highest coordinator epoch this GQES has accepted (D14).
  uint64_t coordinator_epoch() const { return coordinator_epoch_; }
  const GqesStats& stats() const { return stats_; }

 protected:
  void HandleMessage(const Message& msg) override;

 private:
  void OnDeploy(const Message& msg, const FragmentInstancePlan& plan);
  void OnCoordinatorEpoch(uint64_t epoch);
  void OnProbeQuery(const Message& msg, int query, uint64_t epoch);

  GridNode* node_;
  Network* network_;
  bool adaptive_;
  std::unique_ptr<MonitoringEventDetector> med_;
  std::unordered_map<std::string, TablePtr> tables_;
  /// Ordered by instance key so Executors() enumerates deterministically
  /// (stats harvesting and chaos invariant sweeps iterate it).
  std::map<std::string, std::unique_ptr<FragmentExecutor>> executors_;
  /// Abandoned instances parked until teardown (see ReleaseQuery).
  std::vector<std::unique_ptr<FragmentExecutor>> released_;
  /// High-water coordinator epoch; commands below it are void (D14).
  uint64_t coordinator_epoch_ = 0;
  GqesStats stats_;
};

}  // namespace gqp

#endif  // GRIDQP_DQP_GQES_H_
