// GDQS — Grid Distributed Query Service: the coordinator. Accepts SQL
// queries, compiles them (parse -> bind -> optimise -> schedule), deploys
// fragment instances to the GQESs, wires the adaptivity services
// (MonitoringEventDetectors -> Diagnoser -> Responder, pub/sub), starts
// execution, and collects the result at the root fragment.

#ifndef GRIDQP_DQP_GDQS_H_
#define GRIDQP_DQP_GDQS_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adapt/adaptivity_config.h"
#include "adapt/diagnoser.h"
#include "adapt/responder.h"
#include "catalog/catalog.h"
#include "dqp/admission.h"
#include "dqp/dqp_messages.h"
#include "dqp/gqes.h"
#include "dqp/mirror_log.h"
#include "plan/optimizer.h"
#include "plan/scheduler.h"
#include "sim/simulator.h"

namespace gqp {

class HeartbeatMonitor;

/// Per-query knobs a client passes at submission.
struct QueryOptions {
  AdaptivityConfig adaptivity;
  ExecConfig exec;
  OptimizerOptions optimizer;
  SchedulerOptions scheduler;
  /// Wall-clock (virtual) budget for the query; 0 disables the deadline
  /// watchdog. A query still running when the budget elapses is
  /// terminated with a partial result (D14: queries stuck in failover
  /// limbo must not hang forever).
  double deadline_ms = 0;
  /// Replaces the scheduler's initial weights on the input exchanges of
  /// the monitored fragment (must match the instance count; ignored
  /// otherwise). A takeover uses it to resume adaptivity from the last
  /// mirrored W instead of rediscovering the imbalance from scratch.
  std::vector<double> initial_weights_override;
  /// Submitting tenant (D16 admission control: per-tenant in-flight caps,
  /// fairness accounting, heaviest-tenant shedding). Empty is a valid
  /// tenant id (the default single-tenant workload).
  std::string tenant;
};

/// The outcome of a completed query.
struct QueryResult {
  int query_id = 0;
  bool complete = false;
  SchemaPtr schema;
  std::vector<Tuple> rows;
  SimTime submit_time_ms = 0;
  SimTime completion_time_ms = 0;
  double response_time_ms = 0;
};

/// Aggregated execution statistics for the overhead experiments.
struct QueryStatsSnapshot {
  uint64_t raw_m1 = 0;
  uint64_t raw_m2 = 0;
  uint64_t med_notifications = 0;
  uint64_t diagnoser_proposals = 0;
  uint64_t rounds_started = 0;
  uint64_t rounds_applied = 0;
  uint64_t resent_tuples = 0;
  uint64_t discarded_tuples = 0;
  /// Tuples routed to each evaluator instance of the monitored fragment.
  std::vector<uint64_t> tuples_per_evaluator;
  // --- queue / flow-control telemetry (D11) -----------------------------
  /// Deepest input queue (tuples) across all fragment instances.
  size_t queue_high_watermark = 0;
  /// Peak tuples parked at once on any single instance.
  size_t parked_peak = 0;
  /// Peak bytes held (queued + parked) on any single input port.
  uint64_t queued_bytes_peak = 0;
  uint64_t credit_grants_sent = 0;
  uint64_t queue_pressure_events = 0;
  /// Pressure-triggered proposals (subset of diagnoser_proposals).
  uint64_t pressure_proposals = 0;
  /// First proposal time of each diagnoser path (<0: never fired).
  double first_pressure_proposal_ms = -1.0;
  double first_rate_proposal_ms = -1.0;
  /// Producer-side events where the credit gate parked the driver.
  uint64_t credit_blocked_events = 0;
  /// Peak unacknowledged (in-flight) bytes on any producer->consumer link.
  uint64_t peak_outstanding_credit_bytes = 0;
  // --- reliable-transport telemetry, scoped to this query's traffic
  //     (attributed per message from the service naming convention, so
  //     the counters stay exact with several live queries on the bus;
  //     DESIGN.md §D12) ---------------------------------------------------
  uint64_t transport_retransmits = 0;
  uint64_t transport_backoffs = 0;
};

/// \brief The coordinator service.
class Gdqs : public GridService {
 public:
  Gdqs(MessageBus* bus, GridNode* node, Network* network, Catalog* catalog,
       ResourceRegistry* registry);
  ~Gdqs() override;

  /// Makes an evaluation service known to the coordinator (the resource
  /// registry of the paper keeps node metadata; this keeps service
  /// pointers for deployment and stats harvesting).
  void AddGqes(Gqes* gqes);

  /// Compiles and deploys a query; execution proceeds as the simulation
  /// runs. `on_complete` (optional) fires when the root fragment finishes.
  /// With admission control configured (D16) the returned id may denote a
  /// QUEUED or REJECTED query rather than a running one: the query either
  /// deploys later when a slot frees up, or carries a terminal Rejected
  /// status (poll ExecutionStatus). Every submitted id reaches exactly one
  /// of {Complete, Aborted, Rejected}.
  Result<int> SubmitQuery(const std::string& sql, const QueryOptions& options,
                          std::function<void(const QueryResult&)> on_complete =
                              nullptr);

  /// Installs the D16 admission controller. Call after every AddGqes (the
  /// pressure subscription covers the known evaluator hosts). A config
  /// with enabled=false is a no-op: the submission path stays exactly as
  /// without admission control.
  void ConfigureAdmission(const AdmissionConfig& config);

  /// Null unless ConfigureAdmission installed an enabled controller.
  const AdmissionController* admission() const { return admission_.get(); }

  /// Hard cap on simultaneously-registered (queued + live) queries — the
  /// loud backstop that stops a runaway submission loop from OOMing the
  /// simulation even with admission control off. SubmitQuery fails with
  /// ResourceExhausted beyond it. Default: effectively unlimited.
  void set_max_active_queries(size_t cap) { max_active_queries_ = cap; }
  size_t max_active_queries() const { return max_active_queries_; }
  /// Queries registered and not yet complete/terminated (excludes the
  /// admission queue; pending_admissions count against the cap too).
  size_t active_queries() const { return active_queries_; }

  /// True once the root fragment of `query_id` reported completion.
  bool QueryComplete(int query_id) const;

  /// Fetches the result of a (completed) query.
  Result<QueryResult> GetResult(int query_id) const;

  /// Aggregates execution stats across all services involved in a query.
  Result<QueryStatsSnapshot> CollectStats(int query_id) const;

  /// The scheduled plan of a query (tests/EXPLAIN output).
  Result<ScheduledPlan> GetPlan(int query_id) const;

  /// First fragment execution error observed for the query (OK if none).
  Status ExecutionStatus(int query_id) const;

  /// Reports a crashed host (normally fed by a heartbeat failure
  /// detector; tests and examples call it directly). For every running
  /// query: evaluator instances on the host are declared dead, downstream
  /// consumers stop waiting for their streams, and the Responder runs a
  /// recovery round that redistributes the recovery-logged tuples of the
  /// dead instances to the survivors.
  Status ReportNodeFailure(HostId host);

  /// Wires the heartbeat failure detector: the GDQS activates it while
  /// queries are in flight (one Activate per running query) and it feeds
  /// confirmed failures back through ReportNodeFailure. When set, the
  /// chaos harness no longer reports failures directly — crashes are
  /// discovered solely through missed heartbeats.
  void SetFailureDetector(HeartbeatMonitor* monitor);

  /// Hosts whose failure was reported (by the detector or directly).
  /// The chaos invariants use it to tell protocol-dead from actually-dead.
  const std::set<HostId>& reported_failures() const {
    return reported_failures_;
  }

  /// Drops all executors and adaptivity services of a query.
  void ReleaseQuery(int query_id);

  /// Terminates a running query: tears down its executors, keeping
  /// whatever rows the root had produced as a partial result. GetResult
  /// afterwards returns complete=false with those rows;
  /// ExecutionStatus returns Aborted. Used by the deadline watchdog and
  /// by the standby for queries past their deadline at takeover.
  Status TerminateQuery(int query_id, const std::string& reason);

  /// Cancels every pending per-query deadline watchdog. Called when the
  /// coordinator's machine is killed: a dead process has no timers, and
  /// leaving them queued would hold the simulation clock until they fire
  /// as no-ops.
  void CancelDeadlineWatchdogs();

  /// Starts mirroring every coordinator decision to `standby` as
  /// MirrorEntryPayloads over the control plane (DESIGN.md §D14). Off by
  /// default; when off, no mirror traffic exists at all.
  void EnableMirroring(const Address& standby);

  /// The primary-side mirror log (null unless mirroring is enabled).
  const MirrorLog* mirror_log() const { return mirror_log_.get(); }

  /// Raises the floor of the query-id counter. A standby taking over
  /// seeds it past the primary's highest mirrored id so retried queries
  /// never collide with surviving executor endpoints.
  void SeedQueryIds(int next_id);

  /// Sets the fenced coordinator epoch stamped onto every deployed plan
  /// and failure-recovery command (D14). Evaluators drop commands with
  /// epochs below their high-water mark.
  void set_coordinator_epoch(uint64_t epoch) { coordinator_epoch_ = epoch; }
  uint64_t coordinator_epoch() const { return coordinator_epoch_; }

  Diagnoser* diagnoser(int query_id) const;
  Responder* responder(int query_id) const;

 protected:
  void HandleMessage(const Message& msg) override;
  void OnNotification(const Address& publisher, const std::string& topic,
                      const PayloadPtr& body) override;

 private:
  struct QueryState {
    int id = 0;
    ScheduledPlan scheduled;
    QueryOptions options;
    SimTime submit_time = 0;
    SimTime completion_time = 0;
    int root_fragment = -1;
    SubplanId root_instance;
    std::set<std::string> pending_acks;
    std::vector<std::string> failed_deploys;
    bool started = false;
    bool complete = false;
    std::vector<Address> instance_addresses;
    std::unique_ptr<Diagnoser> diagnoser;
    std::unique_ptr<Responder> responder;
    std::function<void(const QueryResult&)> on_complete;
    /// The partitioned fragment being monitored (-1 when none).
    int monitored_fragment = -1;
    /// True while this query holds an Activate() on the failure detector.
    bool detector_active = false;
    /// Terminated by the deadline watchdog (or a takeover decision).
    bool terminated = false;
    Status terminal_status;
    /// Root rows salvaged at termination (the executors are gone after).
    std::vector<Tuple> partial_rows;
    /// Pending deadline-watchdog event (kInvalidEventId when disarmed).
    EventId deadline_event = kInvalidEventId;
    /// Credit window Deploy derived from the memory budget (mirrored so
    /// the standby can report/recreate it without re-deriving).
    uint64_t derived_credit_window = 0;
    /// Counted in active_queries_ (cleared at the terminal transition).
    bool active_counted = false;
    /// Holds an admission slot (D16); released exactly once on the
    /// terminal transition.
    bool admission_live = false;
  };

  /// A submission waiting in the admission queue (D16): everything needed
  /// to launch it when a slot frees up.
  struct PendingSubmission {
    std::string sql;
    QueryOptions options;
    std::function<void(const QueryResult&)> on_complete;
    SimTime submit_time = 0;
    /// Deadline watchdog covering the queue wait (composes with D14: a
    /// query whose budget elapses while queued terminates without ever
    /// deploying).
    EventId queue_deadline_event = kInvalidEventId;
  };

  /// Terminal record of a query that never deployed: Rejected (queue
  /// full / shed) or Aborted (deadline elapsed in the queue).
  struct AdmissionTerminal {
    std::string tenant;
    Status status;
    SimTime submit_time = 0;
    SimTime decided_time = 0;
  };

  Gqes* GqesOnHost(HostId host) const;
  Status Deploy(QueryState* state);
  Status SetUpAdaptivity(QueryState* state);
  void OnDeployAck(const DeployAckPayload& ack);
  void OnFragmentComplete(const FragmentCompletePayload& complete);
  void OnDeadline(int query_id);
  /// Compiles and deploys one query. forced_id < 0 allocates a fresh id
  /// (after compilation, so failed submissions never consume ids);
  /// admission launches pass their pre-assigned id. `watchdog_ms` arms the
  /// deadline watchdog (0: none; admission passes the remaining budget).
  Result<int> LaunchQuery(const std::string& sql, const QueryOptions& options,
                          std::function<void(const QueryResult&)> on_complete,
                          int forced_id, SimTime submit_time,
                          double watchdog_ms, bool admission_managed);
  // --- admission control (D16) ------------------------------------------
  Result<int> SubmitWithAdmission(
      const std::string& sql, const QueryOptions& options,
      std::function<void(const QueryResult&)> on_complete);
  /// Launches queued submissions while slots and per-tenant caps allow.
  void DrainAdmissionQueue();
  /// Deadline watchdog of a query still waiting in the admission queue.
  void OnQueuedDeadline(int query_id);
  /// Finalizes a rejection: terminal Rejected record + mirror entry.
  void RecordRejected(int query_id, const std::string& tenant,
                      RejectReason reason, SimTime submit_time);
  /// Terminal record for a queued query that died before deploying.
  void RecordQueuedTerminal(int query_id, const PendingSubmission& pending,
                            Status status);
  /// Releases the admission slot of a finished query exactly once and
  /// admits queued successors.
  void FinishAdmission(QueryState* state, bool completed);
  /// One shed round: drop the heaviest tenant's newest queued entry, or
  /// terminate its youngest running query.
  void ShedHeaviestTenant();
  void MarkInactive(QueryState* state);
  QueryResult BuildResult(const QueryState& state) const;
  FragmentExecutor* FindInstance(const SubplanId& id) const;
  /// Releases a query's executors on every node: direct calls
  /// sequentially, fenced ReleaseQuery messages in sharded runs (remote
  /// evaluator state lives on other shards).
  void ReleaseOnAllNodes(int query_id);
  /// Appends to the mirror log and ships the entry to the standby.
  /// No-op unless mirroring is enabled.
  void Mirror(MirrorEntry entry);
  /// Mirrors a kEpochBump when the detector's watch epoch moved since the
  /// last mirrored value.
  void MirrorDetectorEpoch();

  GridNode* node_;
  Network* network_;
  Catalog* catalog_;
  ResourceRegistry* registry_;
  std::vector<Gqes*> gqes_;
  /// Ordered by query id: ReportNodeFailure walks every running query, and
  /// its recovery rounds must fire in a deterministic order (replay
  /// determinism is a tested invariant of the chaos harness).
  std::map<int, QueryState> queries_;
  HeartbeatMonitor* detector_ = nullptr;
  std::set<HostId> reported_failures_;
  int next_query_id_ = 1;
  // --- admission control (D16) ------------------------------------------
  std::unique_ptr<AdmissionController> admission_;
  /// Queued submissions by id (the controller holds the FIFO order).
  std::map<int, PendingSubmission> pending_admissions_;
  /// Queries that reached a terminal state without ever deploying.
  std::map<int, AdmissionTerminal> admission_terminal_;
  /// Registered queries not yet complete/terminated (satellite backstop).
  size_t active_queries_ = 0;
  size_t max_active_queries_ = 1'000'000;
  // --- coordinator failover (D14) ---------------------------------------
  bool mirroring_ = false;
  Address standby_;
  std::unique_ptr<MirrorLog> mirror_log_;
  uint64_t last_mirrored_epoch_ = 0;
  uint64_t coordinator_epoch_ = 0;
};

}  // namespace gqp

#endif  // GRIDQP_DQP_GDQS_H_
