// StandbyCoordinator (DESIGN.md §D14): a replicated GDQS that mirrors the
// primary's decisions via the mirror log, watches the primary with its own
// φ-style heartbeat monitor, and on confirmed primary death takes over
// under a freshly fenced coordinator epoch:
//
//   1. stop the orphaned evaluator heartbeaters of the dead primary's
//      watch epoch;
//   2. broadcast the new coordinator epoch to every surviving GQES
//      (commands of the deposed primary become void);
//   3. reconcile each in-flight query: probe the executor census on every
//      surviving host, release the survivors, then either terminate the
//      query (deadline already blown) or resubmit it through the inner
//      GDQS — seeded past the primary's highest query id and primed with
//      the last mirrored weight vector W so adaptivity resumes instead of
//      restarting.
//
// Clients keep their original query ids: the standby answers
// QueryComplete/GetResult/ExecutionStatus for them, serving mirrored rows
// for queries that finished before the crash and proxying to the retried
// incarnation otherwise.

#ifndef GRIDQP_DQP_STANDBY_H_
#define GRIDQP_DQP_STANDBY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "detect/monitor.h"
#include "dqp/failover_messages.h"
#include "dqp/gdqs.h"
#include "dqp/mirror_log.h"

namespace gqp {

/// Counters of one takeover (chaos summaries and tests).
struct TakeoverStats {
  bool taken_over = false;
  /// The fenced coordinator epoch the takeover ran under.
  uint64_t epoch = 0;
  SimTime takeover_at_ms = 0.0;
  uint64_t mirror_entries_applied = 0;
  /// Entries above the contiguous frontier at takeover (mirror lag).
  uint64_t mirror_entries_held_back = 0;
  int queries_reconciled = 0;
  int queries_retried = 0;
  int queries_terminated = 0;
  /// Mirrored admission-queue entries resubmitted at takeover (D16:
  /// queued work survives the primary).
  int queries_requeued = 0;
  /// Queries already complete in the mirror, served without re-running.
  int queries_served_mirrored = 0;
  int probes_sent = 0;
  int probe_replies = 0;
  /// Executor instances surviving hosts reported in probe replies.
  int instances_probed = 0;
  int releases_sent = 0;
};

/// \brief The standby GDQS and its takeover protocol.
class StandbyCoordinator : public GridService {
 public:
  /// `watch` must have enabled=true and allow_last_survivor_confirm=true
  /// (the standby watches exactly one host; confirming it IS the
  /// takeover trigger). `primary` is the primary GDQS's address.
  StandbyCoordinator(MessageBus* bus, GridNode* node, Network* network,
                     Catalog* catalog, ResourceRegistry* registry,
                     const DetectConfig& watch, Address primary);
  ~StandbyCoordinator() override;

  /// Starts the standby endpoint, the inner GDQS and the primary watch
  /// monitor (the caller still wires a Heartbeater on the primary's host
  /// to monitor()->Watch()).
  Status Initialize();

  /// Forwards to the inner GDQS (deployment targets for retried queries).
  void AddGqes(Gqes* gqes);

  /// Installs the same D16 admission config on the inner GDQS, so retried
  /// and re-queued queries face the caps the primary enforced. Call after
  /// every AddGqes.
  void ConfigureAdmission(const AdmissionConfig& config);

  bool TakenOver() const { return stats_.taken_over; }
  const TakeoverStats& stats() const { return stats_; }
  const MirrorState& mirror_state() const { return mirror_state_; }
  HeartbeatMonitor* monitor() { return monitor_.get(); }
  /// The inner GDQS that owns retried queries after a takeover.
  Gdqs* gdqs() { return gdqs_.get(); }

  // --- client view keyed by ORIGINAL query id ---------------------------
  /// The id a query runs under now: its retried id after a takeover, the
  /// original id otherwise.
  int FinalQueryId(int query_id) const;
  bool QueryComplete(int query_id) const;
  Result<QueryResult> GetResult(int query_id) const;
  Status ExecutionStatus(int query_id) const;

  /// Forces the takeover immediately (tests; normally the watch monitor's
  /// confirm callback drives it).
  void TakeOver();

 protected:
  void HandleMessage(const Message& msg) override;

 private:
  void OnMirrorEntry(const Message& msg, const MirrorEntry& entry);
  /// Keeps the primary watch active exactly while the mirror shows
  /// in-flight queries — an idle watch would keep the simulation alive.
  void UpdateWatch();
  void ReconcileQuery(int query_id, const MirroredQuery& q);
  /// Resubmits a query that was still in the primary's admission queue.
  void RequeueQuery(int query_id, const MirroredQuery& q);

  GridNode* node_;
  Network* network_;
  ResourceRegistry* registry_;
  Address primary_;
  std::unique_ptr<Gdqs> gdqs_;
  std::unique_ptr<HeartbeatMonitor> monitor_;
  std::vector<Gqes*> gqes_;
  MirrorState mirror_state_;
  /// original id -> retried id (takeover resubmissions).
  std::map<int, int> retried_;
  /// Queries terminated at takeover (deadline blown in failover limbo).
  std::map<int, Status> terminated_;
  bool watch_active_ = false;
  TakeoverStats stats_;
};

}  // namespace gqp

#endif  // GRIDQP_DQP_STANDBY_H_
