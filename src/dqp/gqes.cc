#include "dqp/gqes.h"

#include "common/logging.h"
#include "common/strings.h"
#include "dqp/dqp_messages.h"

namespace gqp {

Gqes::Gqes(MessageBus* bus, GridNode* node, Network* network, bool adaptive,
           MonitoringEventDetectorConfig med_config)
    : GridService(bus, node->id(), StrCat("gqes@", node->id())),
      node_(node),
      network_(network),
      adaptive_(adaptive) {
  if (adaptive_) {
    med_ = std::make_unique<MonitoringEventDetector>(bus, node->id(), "med",
                                                     med_config, node);
  }
}

Gqes::~Gqes() = default;

Status Gqes::StartService() {
  GQP_RETURN_IF_ERROR(Start());
  if (med_ != nullptr) {
    GQP_RETURN_IF_ERROR(med_->Start());
  }
  return Status::OK();
}

void Gqes::RegisterTable(TablePtr table) {
  tables_[ToUpper(table->name())] = std::move(table);
}

Address Gqes::med_address() const {
  if (med_ == nullptr) return Address{};
  return med_->address();
}

FragmentExecutor* Gqes::FindExecutor(const SubplanId& id) const {
  auto it = executors_.find(id.ToString());
  return it == executors_.end() ? nullptr : it->second.get();
}

std::vector<FragmentExecutor*> Gqes::Executors() const {
  std::vector<FragmentExecutor*> out;
  out.reserve(executors_.size());
  for (const auto& [key, executor] : executors_) {
    out.push_back(executor.get());
  }
  return out;
}

void Gqes::ReleaseQuery(int query_id) {
  for (auto it = executors_.begin(); it != executors_.end();) {
    if (it->second->plan().id.query == query_id) {
      it = executors_.erase(it);
    } else {
      ++it;
    }
  }
}

void Gqes::HandleMessage(const Message& msg) {
  const auto* deploy = PayloadAs<DeployFragmentPayload>(msg.payload);
  if (deploy == nullptr) {
    GQP_LOG_DEBUG << "GQES " << name() << ": unhandled payload "
                  << (msg.payload ? msg.payload->TypeName() : "null");
    return;
  }

  const FragmentInstancePlan& plan = deploy->plan();
  TablePtr table;
  if (plan.fragment.IsScanLeaf()) {
    auto it = tables_.find(ToUpper(plan.fragment.ops.front().table));
    if (it != tables_.end()) table = it->second;
  }

  auto executor = std::make_unique<FragmentExecutor>(bus(), node_, network_,
                                                     plan, std::move(table));
  const Status prepared = executor->Prepare();
  if (prepared.ok()) {
    executors_[plan.id.ToString()] = std::move(executor);
  } else {
    GQP_LOG_ERROR << "GQES " << name() << ": deploy of "
                  << plan.id.ToString() << " failed: " << prepared.ToString();
  }
  const Status sent = SendTo(
      msg.from, std::make_shared<DeployAckPayload>(plan.id, prepared.ok(),
                                                   prepared.ToString()));
  if (!sent.ok()) {
    GQP_LOG_ERROR << "GQES " << name()
                  << ": deploy ack failed: " << sent.ToString();
  }
}

}  // namespace gqp
