#include "dqp/gqes.h"

#include "common/logging.h"
#include "common/strings.h"
#include "dqp/dqp_messages.h"
#include "dqp/failover_messages.h"

namespace gqp {

Gqes::Gqes(MessageBus* bus, GridNode* node, Network* network, bool adaptive,
           MonitoringEventDetectorConfig med_config)
    : GridService(bus, node->id(), StrCat("gqes@", node->id())),
      node_(node),
      network_(network),
      adaptive_(adaptive) {
  if (adaptive_) {
    med_ = std::make_unique<MonitoringEventDetector>(bus, node->id(), "med",
                                                     med_config, node);
  }
}

Gqes::~Gqes() = default;

Status Gqes::StartService() {
  GQP_RETURN_IF_ERROR(Start());
  if (med_ != nullptr) {
    GQP_RETURN_IF_ERROR(med_->Start());
  }
  return Status::OK();
}

void Gqes::RegisterTable(TablePtr table) {
  tables_[ToUpper(table->name())] = std::move(table);
}

Address Gqes::med_address() const {
  if (med_ == nullptr) return Address{};
  return med_->address();
}

FragmentExecutor* Gqes::FindExecutor(const SubplanId& id) const {
  auto it = executors_.find(id.ToString());
  return it == executors_.end() ? nullptr : it->second.get();
}

std::vector<FragmentExecutor*> Gqes::Executors() const {
  std::vector<FragmentExecutor*> out;
  out.reserve(executors_.size());
  for (const auto& [key, executor] : executors_) {
    out.push_back(executor.get());
  }
  return out;
}

void Gqes::ReleaseQuery(int query_id) {
  for (auto it = executors_.begin(); it != executors_.end();) {
    if (it->second->plan().id.query == query_id) {
      // The instance may have node work in flight whose completion
      // callback points into it; destroying it here would leave the node
      // queue dangling. Abandon it (inert: drops every message, starts no
      // work) and park the object until the GQES itself is torn down.
      it->second->Abandon();
      released_.push_back(std::move(it->second));
      it = executors_.erase(it);
    } else {
      ++it;
    }
  }
}

void Gqes::HandleMessage(const Message& msg) {
  if (const auto* deploy = PayloadAs<DeployFragmentPayload>(msg.payload)) {
    OnDeploy(msg, deploy->plan());
    return;
  }
  if (const auto* epoch = PayloadAs<CoordinatorEpochPayload>(msg.payload)) {
    OnCoordinatorEpoch(epoch->epoch());
    return;
  }
  if (const auto* probe = PayloadAs<ProbeQueryPayload>(msg.payload)) {
    OnProbeQuery(msg, probe->query(), probe->coordinator_epoch());
    return;
  }
  if (const auto* release = PayloadAs<ReleaseQueryPayload>(msg.payload)) {
    if (release->coordinator_epoch() < coordinator_epoch_) {
      ++stats_.stale_epoch_dropped;
      return;
    }
    ReleaseQuery(release->query());
    return;
  }
  GQP_LOG_DEBUG << "GQES " << name() << ": unhandled payload "
                << (msg.payload ? msg.payload->TypeName() : "null");
}

void Gqes::OnCoordinatorEpoch(uint64_t epoch) {
  if (epoch <= coordinator_epoch_) return;
  coordinator_epoch_ = epoch;
  ++stats_.epoch_updates;
  // Fan the fence out to every live executor so commands of the deposed
  // coordinator (recovery purges, lost-stream notices) become void.
  for (auto& [key, executor] : executors_) {
    executor->AdvanceCoordinatorEpoch(epoch);
  }
}

void Gqes::OnProbeQuery(const Message& msg, int query, uint64_t epoch) {
  if (epoch < coordinator_epoch_) {
    ++stats_.stale_epoch_dropped;
    return;
  }
  int count = 0;
  int finished = 0;
  for (const auto& [key, executor] : executors_) {
    if (executor->plan().id.query != query) continue;
    ++count;
    if (executor->finished()) ++finished;
  }
  ++stats_.probes_answered;
  const Status sent = SendTo(
      msg.from,
      std::make_shared<ProbeReplyPayload>(query, host(), count, finished));
  if (!sent.ok()) {
    GQP_LOG_ERROR << "GQES " << name()
                  << ": probe reply failed: " << sent.ToString();
  }
}

void Gqes::OnDeploy(const Message& msg, const FragmentInstancePlan& plan) {
  // A deployment stamped by a deposed coordinator must not take root: the
  // new coordinator has its own view of the query and will redeploy.
  if (plan.coordinator_epoch < coordinator_epoch_) {
    ++stats_.stale_epoch_dropped;
    return;
  }
  TablePtr table;
  if (plan.fragment.IsScanLeaf()) {
    auto it = tables_.find(ToUpper(plan.fragment.ops.front().table));
    if (it != tables_.end()) table = it->second;
  }

  auto executor = std::make_unique<FragmentExecutor>(bus(), node_, network_,
                                                     plan, std::move(table));
  const Status prepared = executor->Prepare();
  if (prepared.ok()) {
    executors_[plan.id.ToString()] = std::move(executor);
  } else {
    GQP_LOG_ERROR << "GQES " << name() << ": deploy of "
                  << plan.id.ToString() << " failed: " << prepared.ToString();
  }
  const Status sent = SendTo(
      msg.from, std::make_shared<DeployAckPayload>(plan.id, prepared.ok(),
                                                   prepared.ToString()));
  if (!sent.ok()) {
    GQP_LOG_ERROR << "GQES " << name()
                  << ": deploy ack failed: " << sent.ToString();
  }
}

}  // namespace gqp
