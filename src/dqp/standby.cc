#include "dqp/standby.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "grid/registry.h"

namespace gqp {

StandbyCoordinator::StandbyCoordinator(MessageBus* bus, GridNode* node,
                                       Network* network, Catalog* catalog,
                                       ResourceRegistry* registry,
                                       const DetectConfig& watch,
                                       Address primary)
    : GridService(bus, node->id(), "standby"),
      node_(node),
      network_(network),
      registry_(registry),
      primary_(std::move(primary)) {
  gdqs_ = std::make_unique<Gdqs>(bus, node, network, catalog, registry);
  monitor_ = std::make_unique<HeartbeatMonitor>(bus, node->id(), watch);
  monitor_->BindNode(node);
}

StandbyCoordinator::~StandbyCoordinator() = default;

Status StandbyCoordinator::Initialize() {
  GQP_RETURN_IF_ERROR(Start());
  GQP_RETURN_IF_ERROR(gdqs_->Start());
  GQP_RETURN_IF_ERROR(monitor_->Start());
  monitor_->set_on_confirm([this](HostId host) {
    if (host == primary_.host) TakeOver();
  });
  return Status::OK();
}

void StandbyCoordinator::AddGqes(Gqes* gqes) {
  gqes_.push_back(gqes);
  gdqs_->AddGqes(gqes);
}

void StandbyCoordinator::ConfigureAdmission(const AdmissionConfig& config) {
  gdqs_->ConfigureAdmission(config);
}

void StandbyCoordinator::HandleMessage(const Message& msg) {
  if (const auto* mirror = PayloadAs<MirrorEntryPayload>(msg.payload)) {
    OnMirrorEntry(msg, mirror->entry());
    return;
  }
  if (const auto* reply = PayloadAs<ProbeReplyPayload>(msg.payload)) {
    ++stats_.probe_replies;
    stats_.instances_probed += reply->executors();
    return;
  }
  GQP_LOG_DEBUG << "standby: unhandled payload "
                << (msg.payload ? msg.payload->TypeName() : "null");
}

void StandbyCoordinator::OnMirrorEntry(const Message& msg,
                                       const MirrorEntry& entry) {
  const uint64_t applied = mirror_state_.Apply(entry);
  stats_.mirror_entries_applied = applied;
  const Status s =
      SendTo(msg.from, std::make_shared<MirrorAckPayload>(applied));
  if (!s.ok()) {
    GQP_LOG_WARN << "standby: mirror ack failed: " << s.ToString();
  }
  if (!stats_.taken_over) UpdateWatch();
}

void StandbyCoordinator::UpdateWatch() {
  // Queued-only queries count as busy: if the primary dies before ever
  // admitting them, the takeover must still run them.
  const bool busy = !mirror_state_.IncompleteQueries().empty() ||
                    !mirror_state_.QueuedQueries().empty();
  if (busy && !watch_active_) {
    watch_active_ = true;
    monitor_->Activate();
  } else if (!busy && watch_active_) {
    watch_active_ = false;
    monitor_->Deactivate();
  }
}

void StandbyCoordinator::TakeOver() {
  if (stats_.taken_over) return;
  stats_.taken_over = true;
  stats_.takeover_at_ms = simulator()->Now();
  stats_.mirror_entries_applied = mirror_state_.applied_seq();
  stats_.mirror_entries_held_back = mirror_state_.held_back();
  // The primary never held a takeover epoch, so epoch 1 deposes it; a
  // chain of takeovers would keep counting up from the mirrored value.
  stats_.epoch = 1;

  // The primary watch served its purpose; let the simulation drain.
  if (watch_active_) {
    watch_active_ = false;
    monitor_->Deactivate();
  }

  // 1. Stop the evaluator heartbeaters the dead primary's monitor
  //    started: they carry its mirrored watch epoch, and with their
  //    monitor gone they would beat (and keep the simulation alive)
  //    forever. The stop is stamped with the mirrored epoch so the
  //    monotone heartbeater accepts it.
  for (GridNode* evaluator : registry_->NodesWithRole(NodeRole::kCompute)) {
    const Status s =
        SendTo(Address{evaluator->id(), "hb"},
               std::make_shared<HeartbeatControlPayload>(
                   /*start=*/false, mirror_state_.detector_epoch(),
                   monitor_->config().heartbeat_interval_ms));
    if (!s.ok()) {
      GQP_LOG_WARN << "standby: heartbeater stop to host " << evaluator->id()
                   << " failed: " << s.ToString();
    }
  }

  // 2. Fence: announce the new epoch to every surviving GQES.
  for (Gqes* g : gqes_) {
    if (g->host() == primary_.host) continue;
    const Status s = SendTo(
        Address{g->host(), g->name()},
        std::make_shared<CoordinatorEpochPayload>(stats_.epoch,
                                                  gdqs_->address()));
    if (!s.ok()) {
      GQP_LOG_WARN << "standby: epoch broadcast to host " << g->host()
                   << " failed: " << s.ToString();
    }
  }

  // 3. The inner GDQS becomes the coordinator: retried queries get fresh
  //    ids past everything the primary handed out (no endpoint
  //    collisions with executors still draining their release).
  gdqs_->SeedQueryIds(mirror_state_.max_query_id() + 1);
  gdqs_->set_coordinator_epoch(stats_.epoch);

  // 4. Reconcile in-flight queries in ascending id order (determinism).
  for (const int query_id : mirror_state_.IncompleteQueries()) {
    const MirroredQuery* q = mirror_state_.Find(query_id);
    if (q != nullptr) ReconcileQuery(query_id, *q);
  }
  // 5. Resubmit queries that were still waiting in the primary's
  //    admission queue (D16): queued work survives the primary. FIFO
  //    order is preserved — ids were assigned in arrival order.
  for (const int query_id : mirror_state_.QueuedQueries()) {
    const MirroredQuery* q = mirror_state_.Find(query_id);
    if (q != nullptr) RequeueQuery(query_id, *q);
  }
  for (const auto& [id, q] : mirror_state_.queries()) {
    if (q.complete) ++stats_.queries_served_mirrored;
  }
  GQP_LOG_INFO << "standby: took over at " << stats_.takeover_at_ms
               << "ms under epoch " << stats_.epoch << " ("
               << stats_.queries_retried << " retried, "
               << stats_.queries_terminated << " terminated)";
}

void StandbyCoordinator::ReconcileQuery(int query_id,
                                        const MirroredQuery& q) {
  ++stats_.queries_reconciled;

  // Probe-then-release on every surviving host, over the same in-order
  // control channel: the census each host reports reflects its state the
  // instant before the release tears it down.
  for (Gqes* g : gqes_) {
    if (g->host() == primary_.host) continue;
    const Address to{g->host(), g->name()};
    Status s = SendTo(
        to, std::make_shared<ProbeQueryPayload>(query_id, stats_.epoch));
    if (s.ok()) {
      ++stats_.probes_sent;
    } else {
      GQP_LOG_WARN << "standby: probe failed: " << s.ToString();
    }
    s = SendTo(
        to, std::make_shared<ReleaseQueryPayload>(query_id, stats_.epoch));
    if (s.ok()) {
      ++stats_.releases_sent;
    } else {
      GQP_LOG_WARN << "standby: release failed: " << s.ToString();
    }
  }

  const SimTime now = simulator()->Now();
  if (q.deadline_ms > 0 && q.submit_time_ms + q.deadline_ms <= now) {
    // The deadline elapsed while the query sat in failover limbo:
    // terminate cleanly instead of retrying work nobody is waiting for.
    ++stats_.queries_terminated;
    terminated_[query_id] = Status::Aborted(
        StrCat("query ", query_id, " terminated: deadline of ",
               q.deadline_ms, " ms expired during coordinator failover"));
    return;
  }

  QueryOptions options;
  options.adaptivity = q.adaptivity;
  options.exec = q.exec;
  options.optimizer = q.optimizer;
  options.scheduler = q.scheduler;
  options.tenant = q.tenant;
  if (q.deadline_ms > 0) {
    options.deadline_ms = q.submit_time_ms + q.deadline_ms - now;
  }
  options.initial_weights_override = q.last_weights;
  Result<int> retried = gdqs_->SubmitQuery(q.sql, options);
  if (!retried.ok()) {
    GQP_LOG_ERROR << "standby: retry of query " << query_id
                  << " failed: " << retried.status().ToString();
    terminated_[query_id] = Status::Aborted(
        StrCat("query ", query_id, " retry failed after takeover: ",
               retried.status().message()));
    ++stats_.queries_terminated;
    return;
  }
  retried_[query_id] = *retried;
  ++stats_.queries_retried;
}

void StandbyCoordinator::RequeueQuery(int query_id, const MirroredQuery& q) {
  const SimTime now = simulator()->Now();
  if (q.deadline_ms > 0 && q.submit_time_ms + q.deadline_ms <= now) {
    // The budget elapsed while the entry sat in failover limbo.
    ++stats_.queries_terminated;
    terminated_[query_id] = Status::Aborted(
        StrCat("query ", query_id, " terminated: deadline of ", q.deadline_ms,
               " ms expired while queued across coordinator failover"));
    return;
  }
  QueryOptions options;
  options.adaptivity = q.adaptivity;
  options.exec = q.exec;
  options.optimizer = q.optimizer;
  options.scheduler = q.scheduler;
  options.tenant = q.tenant;
  if (q.deadline_ms > 0) {
    options.deadline_ms = q.submit_time_ms + q.deadline_ms - now;
  }
  Result<int> requeued = gdqs_->SubmitQuery(q.sql, options);
  if (!requeued.ok()) {
    GQP_LOG_ERROR << "standby: requeue of query " << query_id
                  << " failed: " << requeued.status().ToString();
    terminated_[query_id] = Status::Aborted(
        StrCat("query ", query_id, " requeue failed after takeover: ",
               requeued.status().message()));
    ++stats_.queries_terminated;
    return;
  }
  retried_[query_id] = *requeued;
  ++stats_.queries_requeued;
}

int StandbyCoordinator::FinalQueryId(int query_id) const {
  auto it = retried_.find(query_id);
  return it == retried_.end() ? query_id : it->second;
}

bool StandbyCoordinator::QueryComplete(int query_id) const {
  auto it = retried_.find(query_id);
  if (it != retried_.end()) return gdqs_->QueryComplete(it->second);
  if (terminated_.count(query_id) > 0) return false;
  const MirroredQuery* q = mirror_state_.Find(query_id);
  return q != nullptr && q->complete;
}

Result<QueryResult> StandbyCoordinator::GetResult(int query_id) const {
  auto it = retried_.find(query_id);
  if (it != retried_.end()) {
    GQP_ASSIGN_OR_RETURN(QueryResult result, gdqs_->GetResult(it->second));
    result.query_id = query_id;  // clients know the original id
    return result;
  }
  const MirroredQuery* q = mirror_state_.Find(query_id);
  if (q == nullptr) {
    return Status::NotFound(StrCat("unknown query ", query_id));
  }
  QueryResult result;
  result.query_id = query_id;
  result.complete = q->complete;
  result.rows = q->rows;
  result.submit_time_ms = q->submit_time_ms;
  result.completion_time_ms = q->completion_time_ms;
  result.response_time_ms = q->completion_time_ms - q->submit_time_ms;
  return result;
}

Status StandbyCoordinator::ExecutionStatus(int query_id) const {
  auto term = terminated_.find(query_id);
  if (term != terminated_.end()) return term->second;
  auto it = retried_.find(query_id);
  if (it != retried_.end()) return gdqs_->ExecutionStatus(it->second);
  const MirroredQuery* q = mirror_state_.Find(query_id);
  if (q == nullptr) {
    return Status::NotFound(StrCat("unknown query ", query_id));
  }
  // A mirrored rejection is terminal: the standby reports it exactly as
  // the primary did (same reason code).
  if (q->rejected) {
    return Status::Rejected(
        StrCat("query ", query_id, " rejected by admission control (",
               RejectReasonName(static_cast<RejectReason>(q->reject_reason)),
               ")"));
  }
  return Status::OK();
}

}  // namespace gqp
