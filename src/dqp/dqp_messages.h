// Control payloads between the GDQS coordinator and GQES evaluation
// services: fragment deployment and acknowledgment.

#ifndef GRIDQP_DQP_DQP_MESSAGES_H_
#define GRIDQP_DQP_DQP_MESSAGES_H_

#include <string>

#include "exec/fragment_executor.h"
#include "net/message.h"

namespace gqp {

/// GDQS -> GQES: instantiate one fragment instance.
class DeployFragmentPayload : public Payload {
 public:
  explicit DeployFragmentPayload(FragmentInstancePlan plan)
      : plan_(std::move(plan)) {}

  size_t WireSize() const override {
    // Plan descriptors are small; approximate by operator count.
    return 256 + 128 * plan_.fragment.ops.size();
  }
  std::string_view TypeName() const override { return "DeployFragment"; }

  const FragmentInstancePlan& plan() const { return plan_; }

 private:
  FragmentInstancePlan plan_;
};

/// GQES -> GDQS: deployment outcome.
class DeployAckPayload : public Payload {
 public:
  DeployAckPayload(SubplanId id, bool ok, std::string message)
      : id_(id), ok_(ok), message_(std::move(message)) {}

  size_t WireSize() const override { return 48 + message_.size(); }
  std::string_view TypeName() const override { return "DeployAck"; }

  const SubplanId& id() const { return id_; }
  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  SubplanId id_;
  bool ok_;
  std::string message_;
};

}  // namespace gqp

#endif  // GRIDQP_DQP_DQP_MESSAGES_H_
