// Coordinator mirror log (DESIGN.md §D14): the deterministic state-machine
// log a primary GDQS ships to its standby over the reliable control plane.
// Every coordinator decision that the standby needs for a takeover becomes
// one MirrorEntry: query registration (enough to resubmit), deployment
// (derived credit window), detector watch-epoch bumps (to stop orphaned
// heartbeaters), applied redistribution weights (to resume adaptivity from
// the mirrored W), ReportNodeFailure decisions, and query completion (with
// the result rows, so a finished query survives the primary).
//
// Primary side: MirrorLog assigns contiguous sequence numbers and retains
// entries until the standby acknowledges them (truncating the acked
// prefix). Standby side: MirrorState applies entries strictly in sequence
// order — out-of-order arrivals are held back — so replaying the same log
// always produces the same state (Fingerprint() proves it byte-for-byte).
//
// Determinism contract: both sides iterate std::map only (no unordered
// containers in any fingerprinted path), and nothing here reads a clock —
// times are carried inside the entries.

#ifndef GRIDQP_DQP_MIRROR_LOG_H_
#define GRIDQP_DQP_MIRROR_LOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "adapt/adaptivity_config.h"
#include "exec/exec_config.h"
#include "net/message.h"
#include "plan/optimizer.h"
#include "plan/scheduler.h"
#include "storage/tuple.h"

namespace gqp {

enum class MirrorEntryKind {
  /// A query was admitted: everything needed to resubmit it.
  kQueryRegistered,
  /// Its fragments were deployed (derived flow-control credit window).
  kDeployed,
  /// The failure detector opened a new watch epoch.
  kEpochBump,
  /// The coordinator confirmed a host failure and ran recovery.
  kFailureDecision,
  /// The Responder applied a redistribution: the live weights W.
  kWeightsApplied,
  /// The root fragment completed; rows are the query's result.
  kQueryComplete,
  /// The query was terminated (deadline watchdog) with a partial result.
  kQueryTerminated,
  /// Admission control queued the query (D16): everything needed to
  /// resubmit it if the primary dies before it is admitted.
  kQueryQueued,
  /// Admission control rejected the query (queue full or shed) — a
  /// terminal state the standby must report consistently.
  kQueryRejected,
};

/// One replicated coordinator decision.
struct MirrorEntry {
  MirrorEntryKind kind = MirrorEntryKind::kQueryRegistered;
  /// Contiguous log position, assigned by MirrorLog::Append (1-based).
  uint64_t seq = 0;
  int query_id = 0;

  // kQueryRegistered / kQueryQueued
  std::string sql;
  AdaptivityConfig adaptivity;
  ExecConfig exec;
  OptimizerOptions optimizer;
  SchedulerOptions scheduler;
  double submit_time_ms = 0.0;
  double deadline_ms = 0.0;
  /// Submitting tenant (D16 admission control; empty without it).
  std::string tenant;

  // kQueryRejected
  int reject_reason = 0;

  // kDeployed
  uint64_t credit_window_bytes = 0;

  // kEpochBump
  uint64_t detector_epoch = 0;

  // kFailureDecision
  HostId failed_host = kInvalidHost;

  // kWeightsApplied
  uint64_t round = 0;
  std::vector<double> weights;

  // kQueryComplete / kQueryTerminated
  std::vector<Tuple> rows;
  double completion_time_ms = 0.0;

  /// Deterministic one-line rendering (fingerprinting and logs).
  std::string Describe() const;
};

/// Primary-side log: append, ship, truncate after acknowledgment.
class MirrorLog {
 public:
  /// Stamps the next sequence number onto `entry` and retains it until
  /// acknowledged. Returns the assigned seq.
  uint64_t Append(MirrorEntry entry);

  /// The standby acknowledged every entry up to and including `seq`;
  /// the acked prefix is dropped.
  void Acknowledge(uint64_t seq);

  /// Entries appended but not yet acknowledged, in seq order.
  const std::deque<MirrorEntry>& pending() const { return pending_; }
  uint64_t next_seq() const { return next_seq_; }
  uint64_t acked_seq() const { return acked_seq_; }
  uint64_t entries_appended() const { return next_seq_ - 1; }
  uint64_t entries_truncated() const { return truncated_; }

 private:
  std::deque<MirrorEntry> pending_;
  uint64_t next_seq_ = 1;
  uint64_t acked_seq_ = 0;
  uint64_t truncated_ = 0;
};

/// Standby-side replica of the primary's query table.
struct MirroredQuery {
  int id = 0;
  std::string sql;
  AdaptivityConfig adaptivity;
  ExecConfig exec;
  OptimizerOptions optimizer;
  SchedulerOptions scheduler;
  double submit_time_ms = 0.0;
  double deadline_ms = 0.0;
  std::string tenant;
  /// Still waiting in the admission queue (D16); cleared on registration.
  bool queued_pending = false;
  /// Terminally rejected by admission control (queue full / shed).
  bool rejected = false;
  int reject_reason = 0;
  bool deployed = false;
  uint64_t credit_window_bytes = 0;
  bool complete = false;
  bool terminated = false;
  double completion_time_ms = 0.0;
  std::vector<Tuple> rows;
  /// Latest applied redistribution (empty: initial weights still live).
  uint64_t weights_round = 0;
  std::vector<double> last_weights;
};

/// Standby-side state machine. Apply() is tolerant of out-of-order
/// delivery (entries above the contiguous frontier are held back) and
/// idempotent for duplicates (entries at or below the frontier are
/// dropped), so any reliable-enough channel yields the same state.
class MirrorState {
 public:
  /// Feeds one entry; applies it (and any unblocked held-back entries)
  /// when it extends the contiguous prefix. Returns the new applied seq.
  uint64_t Apply(const MirrorEntry& entry);

  /// Highest contiguously applied sequence number.
  uint64_t applied_seq() const { return applied_seq_; }
  uint64_t entries_applied() const { return applied_seq_; }
  uint64_t held_back() const { return static_cast<uint64_t>(pending_.size()); }

  const std::map<int, MirroredQuery>& queries() const { return queries_; }
  const MirroredQuery* Find(int query_id) const;
  /// Queries registered (deployed or deploying) but neither complete nor
  /// terminated nor rejected, ascending id. Queued-only queries are not
  /// in-flight; QueuedQueries() lists them.
  std::vector<int> IncompleteQueries() const;
  /// Queries still waiting in the admission queue, ascending id (the
  /// takeover resubmits them so queued work survives the primary).
  std::vector<int> QueuedQueries() const;
  int max_query_id() const { return max_query_id_; }
  uint64_t detector_epoch() const { return detector_epoch_; }
  const std::map<HostId, uint64_t>& failure_decisions() const {
    return failure_decisions_;
  }

  /// FNV-1a over a canonical rendering of the whole state: equal logs
  /// produce equal fingerprints, any divergence (ordering, lost entry,
  /// duplicated apply) changes it.
  uint64_t Fingerprint() const;

 private:
  void ApplyInOrder(const MirrorEntry& entry);

  std::map<int, MirroredQuery> queries_;
  /// Entries ahead of the contiguous frontier, keyed by seq.
  std::map<uint64_t, MirrorEntry> pending_;
  std::map<HostId, uint64_t> failure_decisions_;
  uint64_t applied_seq_ = 0;
  uint64_t detector_epoch_ = 0;
  int max_query_id_ = 0;
};

}  // namespace gqp

#endif  // GRIDQP_DQP_MIRROR_LOG_H_
