// GDQS admission control (DESIGN.md §D16): the coordinator-side policy
// that keeps the engine inside its resource envelope when offered load
// exceeds capacity. The controller is pure bookkeeping — the GDQS owns it,
// feeds it submissions / completions / pressure events, and performs the
// resulting actions (launch, queue, reject, shed):
//
//   * a bounded FIFO admission queue in front of `max_concurrent_queries`
//     execution slots, with a per-tenant in-flight cap so one tenant
//     cannot monopolise the grid;
//   * deterministic rejection (Rejected terminal status + reason code)
//     once the queue is full;
//   * a global memory budget partitioned evenly across live queries via
//     the D11 `memory_budget_bytes` plumbing (each admission derives the
//     current share; Deploy turns it into per-link credit windows);
//   * pressure-driven shedding: sustained QueuePressure events within a
//     window trigger one shed round against the heaviest tenant (most
//     in-flight, then most queued, ties to the lexicographically smallest
//     tenant id), dropping its newest queued entry first and terminating
//     its youngest running query otherwise, then backing off for a
//     cooldown.
//
// Determinism contract: std::map/std::deque only, no clock reads — the
// GDQS passes virtual timestamps in. Every decision is a pure function of
// the submission/pressure sequence, so same-seed runs replay identically.

#ifndef GRIDQP_DQP_ADMISSION_H_
#define GRIDQP_DQP_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

namespace gqp {

struct AdmissionConfig {
  /// Master switch; when false the GDQS behaves exactly as before (no
  /// controller state, no MED subscription, byte-identical traces).
  bool enabled = false;
  /// Execution slots: queries admitted (deployed) at once.
  int max_concurrent_queries = 8;
  /// Bounded FIFO queue in front of the slots; submissions beyond it are
  /// rejected with RejectReason::kQueueFull.
  size_t queue_capacity = 16;
  /// Per-tenant ceiling on in-flight (admitted, unfinished) queries.
  int per_tenant_inflight_cap = 4;
  /// Global memory budget split evenly across live queries at admission
  /// (0: queries keep whatever budget their options carry).
  uint64_t global_memory_budget_bytes = 0;
  /// Pressure-driven shedding (needs enabled=true to matter).
  bool shed_enabled = true;
  /// QueuePressure events within `shed_window_ms` that count as
  /// "sustained" and trigger a shed round.
  int shed_pressure_events = 8;
  double shed_window_ms = 50.0;
  /// Minimum spacing between shed rounds.
  double shed_cooldown_ms = 200.0;
};

/// Why a submission was refused (carried in the Rejected status message
/// and the mirror log, so the standby reports the same reason).
enum class RejectReason {
  kNone = 0,
  /// The bounded admission queue was at capacity.
  kQueueFull = 1,
  /// Dropped from the queue by an overload shed round.
  kShed = 2,
};

std::string_view RejectReasonName(RejectReason reason);

/// What OnSubmit decided for a new query.
enum class AdmissionOutcome { kQueued, kRejected };

/// Per-tenant accounting (driver reports, shed selection, tests).
struct TenantAdmissionState {
  int inflight = 0;
  size_t queued = 0;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  /// Shed while queued or running (subset of rejected/terminated).
  uint64_t shed = 0;
  uint64_t completed = 0;
};

struct AdmissionStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t shed_queued = 0;
  uint64_t shed_running = 0;
  uint64_t pressure_events = 0;
  uint64_t shed_rounds = 0;
  size_t queue_peak = 0;
};

/// \brief Admission-queue state machine of the GDQS.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  const AdmissionConfig& config() const { return config_; }

  /// Routes a new submission: enqueues it (FIFO) or rejects it when the
  /// queue is full. The caller drains admittable entries afterwards.
  AdmissionOutcome OnSubmit(const std::string& tenant, int query_id,
                            RejectReason* reason);

  /// Pops the first queue entry eligible to run — FIFO order, skipping
  /// entries whose tenant is at its in-flight cap (so a flooding tenant
  /// cannot head-of-line-block the others) — and accounts it as admitted.
  /// Returns -1 when no entry is eligible (or all slots are busy).
  int NextAdmittable();

  /// The memory-budget share a query admitted right now receives:
  /// global_memory_budget_bytes split over the current live count.
  /// 0 when no global budget is configured.
  uint64_t BudgetShareBytes() const;

  /// An admitted query reached a terminal state (complete, terminated or
  /// failed to launch); frees its slot and its tenant's in-flight unit.
  void OnQueryFinished(const std::string& tenant, bool completed);

  /// Removes a queued entry (queue-deadline expiry or takeover replay).
  /// Returns true if the id was queued.
  bool RemoveQueued(int query_id);

  /// Feeds one QueuePressure event at virtual time `now_ms`. Returns true
  /// when the event completes a sustained burst (>= shed_pressure_events
  /// within shed_window_ms, cooldown respected): the caller runs one shed
  /// round against HeaviestTenant().
  bool OnPressureEvent(double now_ms);

  /// The heaviest tenant among those with work in the system: most
  /// in-flight, then most queued, ties to the lexicographically smallest
  /// tenant id. Empty string when no tenant has work.
  std::string HeaviestTenant() const;

  /// Pops the NEWEST queued entry of `tenant` (queued work is shed before
  /// running work — nothing started, nothing wasted). Returns the query
  /// id, or -1 when the tenant has no queued entries.
  int PopNewestQueuedOf(const std::string& tenant);

  /// Accounts a shed of a RUNNING query of `tenant` (the GDQS terminates
  /// it; OnQueryFinished still fires through the termination path).
  void NoteRunningShed(const std::string& tenant);

  int live() const { return live_; }
  size_t queue_depth() const { return queue_.size(); }
  const AdmissionStats& stats() const { return stats_; }
  const std::map<std::string, TenantAdmissionState>& tenants() const {
    return tenants_;
  }

 private:
  struct QueuedEntry {
    int query_id = 0;
    std::string tenant;
  };

  AdmissionConfig config_;
  std::deque<QueuedEntry> queue_;
  std::map<std::string, TenantAdmissionState> tenants_;
  /// Admitted queries not yet finished.
  int live_ = 0;
  AdmissionStats stats_;
  /// Timestamps of recent pressure events (sliding shed window).
  std::deque<double> pressure_window_;
  double last_shed_ms_ = -1.0;
};

}  // namespace gqp

#endif  // GRIDQP_DQP_ADMISSION_H_
