// Payloads of the coordinator-failover control protocol (DESIGN.md §D14).
//
// Mirroring (primary GDQS -> standby): MirrorEntryPayload ships one
// state-machine log entry; MirrorAckPayload flows back so the primary can
// truncate its acknowledged prefix. Takeover (standby -> evaluators):
// CoordinatorEpochPayload announces the new, fenced coordinator;
// ProbeQuery/ProbeReply reconcile which fragment instances of an
// in-flight query still exist on each GQES; ReleaseQueryPayload tears the
// survivors down before the query is retried under the new epoch.
//
// All of this traffic exists only when the standby is enabled, so the
// WireSize figures here never perturb legacy traces.

#ifndef GRIDQP_DQP_FAILOVER_MESSAGES_H_
#define GRIDQP_DQP_FAILOVER_MESSAGES_H_

#include <cstdint>
#include <utility>

#include "dqp/mirror_log.h"
#include "net/message.h"

namespace gqp {

/// Primary -> standby: one mirror-log entry (reliable control plane).
class MirrorEntryPayload : public Payload {
 public:
  explicit MirrorEntryPayload(MirrorEntry entry) : entry_(std::move(entry)) {}

  size_t WireSize() const override {
    // Kind + seq + query id + fixed scalar fields...
    size_t bytes = 64 + entry_.sql.size() + 8 * entry_.weights.size();
    // ...plus result rows for completion entries.
    for (const Tuple& row : entry_.rows) bytes += 12 + row.WireSize();
    return bytes;
  }
  std::string_view TypeName() const override { return "MirrorEntry"; }

  const MirrorEntry& entry() const { return entry_; }

 private:
  MirrorEntry entry_;
};

/// Standby -> primary: entries up to `seq` are applied; truncate them.
class MirrorAckPayload : public Payload {
 public:
  explicit MirrorAckPayload(uint64_t seq) : seq_(seq) {}

  size_t WireSize() const override { return 16; }
  std::string_view TypeName() const override { return "MirrorAck"; }

  uint64_t seq() const { return seq_; }

 private:
  uint64_t seq_;
};

/// New coordinator -> every GQES: the coordinator epoch advanced; commands
/// stamped with older epochs are void, and coordinator-bound reports go to
/// `coordinator` from now on.
class CoordinatorEpochPayload : public Payload {
 public:
  CoordinatorEpochPayload(uint64_t epoch, Address coordinator)
      : epoch_(epoch), coordinator_(std::move(coordinator)) {}

  size_t WireSize() const override {
    return 16 + coordinator_.service.size();
  }
  std::string_view TypeName() const override { return "CoordinatorEpoch"; }

  uint64_t epoch() const { return epoch_; }
  const Address& coordinator() const { return coordinator_; }

 private:
  uint64_t epoch_;
  Address coordinator_;
};

/// New coordinator -> GQES: report the executor state of `query` (D14
/// reconciliation probe). Fenced by `coordinator_epoch`.
class ProbeQueryPayload : public Payload {
 public:
  ProbeQueryPayload(int query, uint64_t coordinator_epoch)
      : query_(query), coordinator_epoch_(coordinator_epoch) {}

  size_t WireSize() const override { return 16; }
  std::string_view TypeName() const override { return "ProbeQuery"; }

  int query() const { return query_; }
  uint64_t coordinator_epoch() const { return coordinator_epoch_; }

 private:
  int query_;
  uint64_t coordinator_epoch_;
};

/// GQES -> new coordinator: executor census for one probed query.
class ProbeReplyPayload : public Payload {
 public:
  ProbeReplyPayload(int query, HostId host, int executors, int finished)
      : query_(query), host_(host), executors_(executors),
        finished_(finished) {}

  size_t WireSize() const override { return 24; }
  std::string_view TypeName() const override { return "ProbeReply"; }

  int query() const { return query_; }
  HostId host() const { return host_; }
  /// Fragment instances of the query still registered on this host.
  int executors() const { return executors_; }
  /// How many of them had already finished.
  int finished() const { return finished_; }

 private:
  int query_;
  HostId host_;
  int executors_;
  int finished_;
};

/// New coordinator -> GQES: tear down every fragment instance of `query`
/// (the query is being retried or terminated). Fenced by
/// `coordinator_epoch`.
class ReleaseQueryPayload : public Payload {
 public:
  ReleaseQueryPayload(int query, uint64_t coordinator_epoch)
      : query_(query), coordinator_epoch_(coordinator_epoch) {}

  size_t WireSize() const override { return 16; }
  std::string_view TypeName() const override { return "ReleaseQuery"; }

  int query() const { return query_; }
  uint64_t coordinator_epoch() const { return coordinator_epoch_; }

 private:
  int query_;
  uint64_t coordinator_epoch_;
};

}  // namespace gqp

#endif  // GRIDQP_DQP_FAILOVER_MESSAGES_H_
