#include "dqp/gdqs.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"
#include "detect/monitor.h"
#include "dqp/dqp_messages.h"
#include "dqp/failover_messages.h"
#include "monitor/monitoring_events.h"
#include "plan/binder.h"

namespace gqp {

Gdqs::Gdqs(MessageBus* bus, GridNode* node, Network* network,
           Catalog* catalog, ResourceRegistry* registry)
    : GridService(bus, node->id(), "gdqs"),
      node_(node),
      network_(network),
      catalog_(catalog),
      registry_(registry) {}

Gdqs::~Gdqs() = default;

void Gdqs::AddGqes(Gqes* gqes) { gqes_.push_back(gqes); }

Gqes* Gdqs::GqesOnHost(HostId host) const {
  for (Gqes* g : gqes_) {
    if (g->host() == host) return g;
  }
  return nullptr;
}

Result<int> Gdqs::SubmitQuery(
    const std::string& sql, const QueryOptions& options,
    std::function<void(const QueryResult&)> on_complete) {
  // Satellite backstop: a runaway submission loop fails loudly instead of
  // OOMing the simulation, admission control or not.
  if (active_queries_ + pending_admissions_.size() >= max_active_queries_) {
    return Status::ResourceExhausted(
        StrCat("coordinator at capacity: ", max_active_queries_,
               " simultaneously-registered queries (max_active_queries)"));
  }
  if (admission_ != nullptr) {
    return SubmitWithAdmission(sql, options, std::move(on_complete));
  }
  return LaunchQuery(sql, options, std::move(on_complete), /*forced_id=*/-1,
                     simulator()->Now(), options.deadline_ms,
                     /*admission_managed=*/false);
}

Result<int> Gdqs::LaunchQuery(
    const std::string& sql, const QueryOptions& options,
    std::function<void(const QueryResult&)> on_complete, int forced_id,
    SimTime submit_time, double watchdog_ms, bool admission_managed) {
  GQP_ASSIGN_OR_RETURN(LogicalNodePtr logical, PlanSql(sql, *catalog_));
  GQP_ASSIGN_OR_RETURN(PhysicalPlan physical,
                       CreatePhysicalPlan(logical, options.optimizer));

  if (options.adaptivity.enabled &&
      options.adaptivity.response == ResponseType::kProspective &&
      physical.HasStatefulPartitionedFragment()) {
    return Status::InvalidArgument(
        "prospective response (R2) cannot preserve correctness for "
        "partitioned stateful operators; use retrospective response (R1)");
  }

  SchedulerOptions sched = options.scheduler;
  if (sched.coordinator == kInvalidHost) sched.coordinator = host();
  // Schedule around every host whose failure this coordinator has acted
  // on: deploying there would wait on a dead host's ack until the
  // deadline. Confirmed knowledge only — a merely-suspected host still
  // gets work.
  for (const HostId failed : reported_failures_) {
    sched.exclude_hosts.insert(failed);
  }
  GQP_ASSIGN_OR_RETURN(ScheduledPlan scheduled,
                       SchedulePlan(physical, *registry_, sched));

  QueryState state;
  state.id = forced_id >= 0 ? forced_id : next_query_id_++;
  state.scheduled = std::move(scheduled);
  state.options = options;
  state.submit_time = submit_time;
  state.on_complete = std::move(on_complete);
  state.admission_live = admission_managed;
  for (const FragmentDesc& f : state.scheduled.plan.fragments) {
    if (f.IsRoot()) state.root_fragment = f.id;
    if (f.partitioned && state.scheduled.NumInstances(f.id) > 1) {
      state.monitored_fragment = f.id;
    }
  }
  state.root_instance = SubplanId{state.id, state.root_fragment, 0};

  // A takeover resumes adaptivity from the last mirrored W rather than
  // rediscovering the imbalance: override the scheduler's initial weights
  // on the monitored fragment's input exchanges when the shape matches.
  if (!options.initial_weights_override.empty() &&
      state.monitored_fragment >= 0) {
    for (const ExchangeDesc* ex :
         state.scheduled.plan.InputsOf(state.monitored_fragment)) {
      auto& weights =
          state.scheduled.initial_weights[static_cast<size_t>(ex->id)];
      if (weights.size() == options.initial_weights_override.size()) {
        weights = options.initial_weights_override;
      }
    }
  }

  if (options.adaptivity.enabled && state.monitored_fragment >= 0) {
    GQP_RETURN_IF_ERROR(SetUpAdaptivity(&state));
  }
  GQP_RETURN_IF_ERROR(Deploy(&state));

  // Watch the evaluators for the lifetime of the query: failure detection
  // only matters while work is in flight, and an idle detector would keep
  // the simulation from draining.
  if (detector_ != nullptr) {
    detector_->Activate();
    state.detector_active = true;
  }

  if (mirroring_) {
    MirrorEntry reg;
    reg.kind = MirrorEntryKind::kQueryRegistered;
    reg.query_id = state.id;
    reg.sql = sql;
    reg.adaptivity = options.adaptivity;
    reg.exec = options.exec;
    reg.optimizer = options.optimizer;
    reg.scheduler = options.scheduler;
    reg.submit_time_ms = state.submit_time;
    reg.deadline_ms = options.deadline_ms;
    reg.tenant = options.tenant;
    Mirror(std::move(reg));
    MirrorDetectorEpoch();
    MirrorEntry dep;
    dep.kind = MirrorEntryKind::kDeployed;
    dep.query_id = state.id;
    dep.credit_window_bytes = state.derived_credit_window;
    Mirror(std::move(dep));
  }

  const int id = state.id;
  state.active_counted = true;
  ++active_queries_;
  auto [it, inserted] = queries_.emplace(id, std::move(state));
  (void)inserted;
  if (watchdog_ms > 0) {
    it->second.deadline_event =
        simulator()->Schedule(watchdog_ms, [this, id] { OnDeadline(id); });
  }
  return id;
}

void Gdqs::ConfigureAdmission(const AdmissionConfig& config) {
  if (!config.enabled) return;
  admission_ = std::make_unique<AdmissionController>(config);
  // Pressure-driven shedding (D16): every node's MED forwards
  // QueuePressurePayloads verbatim on the monitoring topic; the
  // coordinator listens so sustained pressure anywhere in the grid can
  // trigger a shed round. No subscription — no extra traffic — when
  // shedding is off.
  if (config.shed_enabled) {
    for (Gqes* g : gqes_) {
      const Status s =
          Subscribe(Address{g->host(), "med"}, kTopicMonitoringAverages);
      if (!s.ok()) {
        GQP_LOG_WARN << "admission pressure subscription on host "
                     << g->host() << " failed: " << s.ToString();
      }
    }
  }
}

Result<int> Gdqs::SubmitWithAdmission(
    const std::string& sql, const QueryOptions& options,
    std::function<void(const QueryResult&)> on_complete) {
  const SimTime now = simulator()->Now();
  const int id = next_query_id_++;
  RejectReason reason = RejectReason::kNone;
  if (admission_->OnSubmit(options.tenant, id, &reason) ==
      AdmissionOutcome::kRejected) {
    RecordRejected(id, options.tenant, reason, now);
    return id;
  }
  PendingSubmission pending;
  pending.sql = sql;
  pending.options = options;
  pending.on_complete = std::move(on_complete);
  pending.submit_time = now;
  auto [it, inserted] = pending_admissions_.emplace(id, std::move(pending));
  (void)inserted;
  if (mirroring_) {
    MirrorEntry entry;
    entry.kind = MirrorEntryKind::kQueryQueued;
    entry.query_id = id;
    entry.sql = sql;
    entry.adaptivity = options.adaptivity;
    entry.exec = options.exec;
    entry.optimizer = options.optimizer;
    entry.scheduler = options.scheduler;
    entry.submit_time_ms = now;
    entry.deadline_ms = options.deadline_ms;
    entry.tenant = options.tenant;
    Mirror(std::move(entry));
  }
  if (options.deadline_ms > 0) {
    it->second.queue_deadline_event = simulator()->Schedule(
        options.deadline_ms, [this, id] { OnQueuedDeadline(id); });
  }
  DrainAdmissionQueue();
  return id;
}

void Gdqs::DrainAdmissionQueue() {
  if (admission_ == nullptr) return;
  int id;
  while ((id = admission_->NextAdmittable()) >= 0) {
    auto it = pending_admissions_.find(id);
    if (it == pending_admissions_.end()) {
      // Queue/desk mismatch should be impossible; free the slot loudly.
      GQP_LOG_ERROR << "admitted query " << id << " has no pending payload";
      admission_->OnQueryFinished("", false);
      continue;
    }
    PendingSubmission pending = std::move(it->second);
    pending_admissions_.erase(it);
    if (pending.queue_deadline_event != kInvalidEventId) {
      simulator()->Cancel(pending.queue_deadline_event);
      pending.queue_deadline_event = kInvalidEventId;
    }
    QueryOptions options = pending.options;
    // Global memory budget partitioned over live queries (D11 plumbing):
    // the share admitted now sticks for the query's lifetime; Deploy
    // spreads it over the plan's exchange links as credit windows.
    if (admission_->config().global_memory_budget_bytes > 0 &&
        options.exec.flow_control_enabled) {
      options.exec.memory_budget_bytes = admission_->BudgetShareBytes();
      options.exec.credit_window_bytes = 0;  // Deploy re-derives per link
    }
    double watchdog_ms = 0.0;
    if (options.deadline_ms > 0) {
      watchdog_ms =
          pending.submit_time + options.deadline_ms - simulator()->Now();
      if (watchdog_ms <= 0) {
        // The budget elapsed the instant a slot freed: terminate without
        // deploying (the queue watchdog races this drain at equal time).
        admission_->OnQueryFinished(options.tenant, false);
        RecordQueuedTerminal(
            id, pending,
            Status::Aborted(StrCat(
                "query ", id, " terminated: deadline of ",
                options.deadline_ms, " ms exceeded while queued")));
        continue;
      }
    }
    Result<int> launched =
        LaunchQuery(pending.sql, options, std::move(pending.on_complete),
                    id, pending.submit_time, watchdog_ms,
                    /*admission_managed=*/true);
    if (!launched.ok()) {
      admission_->OnQueryFinished(options.tenant, false);
      RecordQueuedTerminal(
          id, pending,
          Status::Aborted(StrCat("query ", id, " failed at admission: ",
                                 launched.status().message())));
    }
  }
}

void Gdqs::OnQueuedDeadline(int query_id) {
  // A dead coordinator's timers fire as no-ops (D14).
  if (node_->dead()) return;
  auto it = pending_admissions_.find(query_id);
  if (it == pending_admissions_.end()) return;
  PendingSubmission pending = std::move(it->second);
  pending_admissions_.erase(it);
  admission_->RemoveQueued(query_id);
  RecordQueuedTerminal(
      query_id, pending,
      Status::Aborted(StrCat("query ", query_id, " terminated: deadline of ",
                             pending.options.deadline_ms,
                             " ms exceeded while queued for admission")));
}

void Gdqs::RecordRejected(int query_id, const std::string& tenant,
                          RejectReason reason, SimTime submit_time) {
  AdmissionTerminal rec;
  rec.tenant = tenant;
  rec.submit_time = submit_time;
  rec.decided_time = simulator()->Now();
  rec.status = Status::Rejected(
      StrCat("query ", query_id, " rejected by admission control (",
             RejectReasonName(reason), ")"));
  admission_terminal_.emplace(query_id, std::move(rec));
  if (mirroring_) {
    MirrorEntry entry;
    entry.kind = MirrorEntryKind::kQueryRejected;
    entry.query_id = query_id;
    entry.tenant = tenant;
    entry.reject_reason = static_cast<int>(reason);
    entry.completion_time_ms = simulator()->Now();
    Mirror(std::move(entry));
  }
}

void Gdqs::RecordQueuedTerminal(int query_id,
                                const PendingSubmission& pending,
                                Status status) {
  AdmissionTerminal rec;
  rec.tenant = pending.options.tenant;
  rec.submit_time = pending.submit_time;
  rec.decided_time = simulator()->Now();
  rec.status = std::move(status);
  admission_terminal_.emplace(query_id, std::move(rec));
  if (mirroring_) {
    MirrorEntry entry;
    entry.kind = MirrorEntryKind::kQueryTerminated;
    entry.query_id = query_id;
    entry.completion_time_ms = simulator()->Now();
    Mirror(std::move(entry));
  }
}

void Gdqs::FinishAdmission(QueryState* state, bool completed) {
  if (!state->admission_live || admission_ == nullptr) return;
  state->admission_live = false;
  admission_->OnQueryFinished(state->options.tenant, completed);
  DrainAdmissionQueue();
}

void Gdqs::ShedHeaviestTenant() {
  if (admission_->live() == 0 && admission_->queue_depth() == 0) return;
  const std::string tenant = admission_->HeaviestTenant();
  // Queued work first: nothing started, nothing wasted.
  const int queued = admission_->PopNewestQueuedOf(tenant);
  if (queued >= 0) {
    auto it = pending_admissions_.find(queued);
    if (it != pending_admissions_.end()) {
      if (it->second.queue_deadline_event != kInvalidEventId) {
        simulator()->Cancel(it->second.queue_deadline_event);
      }
      const SimTime submit_time = it->second.submit_time;
      pending_admissions_.erase(it);
      RecordRejected(queued, tenant, RejectReason::kShed, submit_time);
    }
    return;
  }
  // No queued entries: terminate the tenant's youngest running query.
  int victim = -1;
  for (const auto& [id, state] : queries_) {
    if (state.complete || state.terminated || !state.admission_live) continue;
    if (state.options.tenant != tenant) continue;
    victim = id;  // ascending map: the last match is the youngest
  }
  if (victim < 0) return;
  admission_->NoteRunningShed(tenant);
  const Status s = TerminateQuery(
      victim, StrCat("shed under sustained queue pressure (heaviest tenant '",
                     tenant, "')"));
  if (!s.ok()) {
    GQP_LOG_ERROR << "shed of query " << victim
                  << " failed: " << s.ToString();
  }
}

void Gdqs::MarkInactive(QueryState* state) {
  if (!state->active_counted) return;
  state->active_counted = false;
  if (active_queries_ > 0) --active_queries_;
}

void Gdqs::SetFailureDetector(HeartbeatMonitor* monitor) {
  detector_ = monitor;
}

void Gdqs::EnableMirroring(const Address& standby) {
  standby_ = standby;
  mirroring_ = true;
  mirror_log_ = std::make_unique<MirrorLog>();
}

void Gdqs::SeedQueryIds(int next_id) {
  next_query_id_ = std::max(next_query_id_, next_id);
}

void Gdqs::Mirror(MirrorEntry entry) {
  if (!mirroring_ || mirror_log_ == nullptr) return;
  mirror_log_->Append(std::move(entry));
  // Append stamped the seq; ship the stored copy to the standby. Delivery
  // rides the reliable control plane; loss of the tail is tolerated (the
  // standby takes over from a consistent prefix).
  const Status s = SendTo(
      standby_, std::make_shared<MirrorEntryPayload>(
                    mirror_log_->pending().back()));
  if (!s.ok()) {
    GQP_LOG_WARN << "mirror shipment failed: " << s.ToString();
  }
}

void Gdqs::MirrorDetectorEpoch() {
  if (!mirroring_ || detector_ == nullptr) return;
  const uint64_t epoch = detector_->epoch();
  if (epoch == last_mirrored_epoch_) return;
  last_mirrored_epoch_ = epoch;
  MirrorEntry entry;
  entry.kind = MirrorEntryKind::kEpochBump;
  entry.detector_epoch = epoch;
  Mirror(std::move(entry));
}

Status Gdqs::SetUpAdaptivity(QueryState* state) {
  const int target = state->monitored_fragment;
  const auto& plan = state->scheduled.plan;

  // Monitored instances (consumer order).
  std::vector<SubplanId> instances;
  const auto& hosts =
      state->scheduled.instance_hosts[static_cast<size_t>(target)];
  for (size_t i = 0; i < hosts.size(); ++i) {
    instances.push_back(SubplanId{state->id, target, static_cast<int>(i)});
  }

  // Initial W: the input exchanges of the monitored fragment share it.
  const std::vector<const ExchangeDesc*> inputs = plan.InputsOf(target);
  if (inputs.empty()) {
    return Status::Internal("monitored fragment has no input exchanges");
  }
  const std::vector<double>& w0 =
      state->scheduled.initial_weights[static_cast<size_t>(inputs[0]->id)];

  // Producers feeding the monitored fragment.
  std::vector<ConsumerEndpoint> producers;
  std::set<HostId> monitored_hosts(hosts.begin(), hosts.end());
  for (const ExchangeDesc* ex : inputs) {
    const auto& producer_hosts =
        state->scheduled
            .instance_hosts[static_cast<size_t>(ex->producer_fragment)];
    for (size_t i = 0; i < producer_hosts.size(); ++i) {
      SubplanId pid{state->id, ex->producer_fragment, static_cast<int>(i)};
      producers.push_back(ConsumerEndpoint{
          pid, Address{producer_hosts[i], pid.ToString()}});
      monitored_hosts.insert(producer_hosts[i]);
    }
  }

  state->diagnoser = std::make_unique<Diagnoser>(
      bus(), host(), StrCat("diagnoser.q", state->id), state->options.adaptivity,
      target, instances, w0);
  state->responder = std::make_unique<Responder>(
      bus(), host(), StrCat("responder.q", state->id),
      state->options.adaptivity, target, std::move(producers), w0);
  GQP_RETURN_IF_ERROR(state->diagnoser->Start());
  GQP_RETURN_IF_ERROR(state->responder->Start());

  // Pub/sub wiring (Fig. 1): Diagnoser listens to every involved site's
  // MED; the Responder listens to the Diagnoser; the Diagnoser learns the
  // applied W from the Responder.
  for (const HostId h : monitored_hosts) {
    GQP_RETURN_IF_ERROR(state->diagnoser->Subscribe(
        Address{h, "med"}, kTopicMonitoringAverages));
  }
  GQP_RETURN_IF_ERROR(state->responder->Subscribe(
      state->diagnoser->address(), kTopicImbalance));
  GQP_RETURN_IF_ERROR(state->diagnoser->Subscribe(
      state->responder->address(), kTopicWeightsApplied));
  // With a standby attached, the coordinator itself also listens for the
  // applied W so every redistribution lands in the mirror log.
  if (mirroring_) {
    GQP_RETURN_IF_ERROR(
        Subscribe(state->responder->address(), kTopicWeightsApplied));
  }
  return Status::OK();
}

Status Gdqs::Deploy(QueryState* state) {
  const auto& plan = state->scheduled.plan;
  // Flow control (D11): derive the per-link credit window once here —
  // the query's memory budget spread evenly over every exchange link —
  // and stamp it into each instance's config copy, so the producer and
  // consumer of a link agree on W without any negotiation.
  ExecConfig exec = state->options.exec;
  if (exec.flow_control_enabled && exec.credit_window_bytes == 0 &&
      exec.memory_budget_bytes > 0) {
    size_t links = 0;
    for (const FragmentDesc& frag : plan.fragments) {
      if (const ExchangeDesc* out = plan.OutputOf(frag.id)) {
        links += static_cast<size_t>(state->scheduled.NumInstances(frag.id)) *
                 static_cast<size_t>(
                     state->scheduled.NumInstances(out->consumer_fragment));
      }
    }
    if (links > 0) {
      exec.credit_window_bytes =
          std::max<size_t>(1, exec.memory_budget_bytes / links);
    }
  }
  state->derived_credit_window = exec.credit_window_bytes;
  for (const FragmentDesc& frag : plan.fragments) {
    const auto& hosts =
        state->scheduled.instance_hosts[static_cast<size_t>(frag.id)];
    for (size_t inst = 0; inst < hosts.size(); ++inst) {
      FragmentInstancePlan instance;
      instance.id =
          SubplanId{state->id, frag.id, static_cast<int>(inst)};
      instance.fragment = frag;
      instance.config = exec;
      instance.config.monitoring_enabled =
          state->options.exec.monitoring_enabled &&
          state->options.adaptivity.enabled;
      instance.coordinator = address();
      instance.coordinator_epoch = coordinator_epoch_;

      // Input wiring.
      for (const ExchangeDesc* ex : plan.InputsOf(frag.id)) {
        InputWiring wiring;
        wiring.desc = *ex;
        wiring.num_producers = state->scheduled.NumInstances(
            ex->producer_fragment);
        instance.inputs.push_back(std::move(wiring));
      }

      // Output wiring.
      if (const ExchangeDesc* out = plan.OutputOf(frag.id)) {
        OutputWiring wiring;
        wiring.desc = *out;
        const auto& consumer_hosts =
            state->scheduled
                .instance_hosts[static_cast<size_t>(out->consumer_fragment)];
        for (size_t c = 0; c < consumer_hosts.size(); ++c) {
          SubplanId cid{state->id, out->consumer_fragment,
                        static_cast<int>(c)};
          wiring.consumers.push_back(ConsumerEndpoint{
              cid, Address{consumer_hosts[c], cid.ToString()}});
        }
        wiring.initial_weights =
            state->scheduled.initial_weights[static_cast<size_t>(out->id)];
        if (frag.IsScanLeaf()) {
          wiring.estimated_rows = frag.ops.front().estimated_rows;
        }
        instance.output = std::move(wiring);
      }

      // Adaptivity wiring.
      if (state->options.adaptivity.enabled && state->responder != nullptr) {
        instance.adaptivity.enabled = true;
        instance.adaptivity.med = Address{hosts[inst], "med"};
        instance.adaptivity.responder = state->responder->address();
      }

      const Address gqes_addr{hosts[inst], StrCat("gqes@", hosts[inst])};
      if (GqesOnHost(hosts[inst]) == nullptr) {
        return Status::FailedPrecondition(
            StrCat("no GQES registered on host ", hosts[inst]));
      }
      state->pending_acks.insert(instance.id.ToString());
      state->instance_addresses.push_back(
          Address{hosts[inst], instance.id.ToString()});
      GQP_RETURN_IF_ERROR(SendTo(
          gqes_addr,
          std::make_shared<DeployFragmentPayload>(std::move(instance))));
    }
  }
  return Status::OK();
}

void Gdqs::HandleMessage(const Message& msg) {
  if (const auto* ack = PayloadAs<DeployAckPayload>(msg.payload)) {
    OnDeployAck(*ack);
    return;
  }
  if (const auto* complete =
          PayloadAs<FragmentCompletePayload>(msg.payload)) {
    OnFragmentComplete(*complete);
    return;
  }
  if (const auto* mirror_ack = PayloadAs<MirrorAckPayload>(msg.payload)) {
    if (mirror_log_ != nullptr) mirror_log_->Acknowledge(mirror_ack->seq());
    return;
  }
  GQP_LOG_DEBUG << "GDQS: unhandled payload "
                << (msg.payload ? msg.payload->TypeName() : "null");
}

void Gdqs::OnNotification(const Address& publisher, const std::string& topic,
                          const PayloadPtr& body) {
  // Admission control (D16) listens to the MEDs' monitoring topic for
  // forwarded QueuePressurePayloads: sustained pressure triggers one shed
  // round against the heaviest tenant.
  if (topic == kTopicMonitoringAverages) {
    if (admission_ == nullptr || node_->dead()) return;
    if (PayloadAs<QueuePressurePayload>(body) == nullptr) return;
    if (admission_->OnPressureEvent(simulator()->Now())) {
      ShedHeaviestTenant();
    }
    return;
  }
  // Mirroring subscribes to each Responder's weights-applied topic so the
  // standby can resume adaptivity from the live W (the publisher is
  // "responder.q<id>"; the query id rides in its name).
  if (topic != kTopicWeightsApplied || !mirroring_) return;
  const auto* applied = PayloadAs<WeightsAppliedPayload>(body);
  if (applied == nullptr) return;
  const size_t pos = publisher.service.rfind(".q");
  if (pos == std::string::npos) return;
  const int query_id = std::atoi(publisher.service.c_str() + pos + 2);
  if (queries_.find(query_id) == queries_.end()) return;
  MirrorEntry entry;
  entry.kind = MirrorEntryKind::kWeightsApplied;
  entry.query_id = query_id;
  entry.round = applied->round();
  entry.weights = applied->weights();
  Mirror(std::move(entry));
}

void Gdqs::OnDeployAck(const DeployAckPayload& ack) {
  auto it = queries_.find(ack.id().query);
  if (it == queries_.end()) return;
  QueryState& state = it->second;
  state.pending_acks.erase(ack.id().ToString());
  if (!ack.ok()) {
    state.failed_deploys.push_back(
        StrCat(ack.id().ToString(), ": ", ack.message()));
    GQP_LOG_ERROR << "deployment failed: " << ack.id().ToString() << " "
                  << ack.message();
  }
  if (!state.pending_acks.empty() || state.started) return;
  if (!state.failed_deploys.empty()) return;  // query stalls; caller checks
  state.started = true;
  for (const Address& instance : state.instance_addresses) {
    const Status s =
        SendTo(instance, std::make_shared<BeginPayload>(state.id));
    if (!s.ok()) {
      GQP_LOG_ERROR << "begin broadcast failed: " << s.ToString();
    }
  }
}

void Gdqs::OnFragmentComplete(const FragmentCompletePayload& complete) {
  auto it = queries_.find(complete.id().query);
  if (it == queries_.end()) return;
  QueryState& state = it->second;
  if (complete.id().fragment != state.root_fragment) return;
  // The root can re-finish after resuming for a recovery resend; refresh
  // the completion time so response time covers the recovery tail, but
  // fire the client callback only once.
  const bool first = !state.complete;
  state.complete = true;
  state.completion_time = simulator()->Now();
  if (first && state.deadline_event != kInvalidEventId) {
    simulator()->Cancel(state.deadline_event);
    state.deadline_event = kInvalidEventId;
  }
  if (first && state.detector_active && detector_ != nullptr) {
    detector_->Deactivate();
    state.detector_active = false;
  }
  if (first && mirroring_) {
    MirrorEntry entry;
    entry.kind = MirrorEntryKind::kQueryComplete;
    entry.query_id = state.id;
    entry.completion_time_ms = state.completion_time;
    if (const FragmentExecutor* root = FindInstance(state.root_instance)) {
      entry.rows = root->Results();
    }
    Mirror(std::move(entry));
  }
  if (first) {
    MarkInactive(&state);
    FinishAdmission(&state, /*completed=*/true);
  }
  if (first && state.on_complete) state.on_complete(BuildResult(state));
}

void Gdqs::OnDeadline(int query_id) {
  // The watchdog dies with the coordinator process: a killed primary's
  // pending deadline events fire as no-ops (the standby re-arms deadlines
  // on the queries it retries).
  if (node_->dead()) return;
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  it->second.deadline_event = kInvalidEventId;  // fired, nothing to cancel
  if (it->second.complete || it->second.terminated) return;
  const Status s = TerminateQuery(
      query_id, StrCat("deadline of ", it->second.options.deadline_ms,
                       " ms exceeded"));
  if (!s.ok()) {
    GQP_LOG_ERROR << "deadline termination of query " << query_id
                  << " failed: " << s.ToString();
  }
}

void Gdqs::CancelDeadlineWatchdogs() {
  for (auto& [id, state] : queries_) {
    if (state.deadline_event != kInvalidEventId) {
      simulator()->Cancel(state.deadline_event);
      state.deadline_event = kInvalidEventId;
    }
  }
  for (auto& [id, pending] : pending_admissions_) {
    if (pending.queue_deadline_event != kInvalidEventId) {
      simulator()->Cancel(pending.queue_deadline_event);
      pending.queue_deadline_event = kInvalidEventId;
    }
  }
}

Status Gdqs::TerminateQuery(int query_id, const std::string& reason) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound(StrCat("unknown query ", query_id));
  }
  QueryState& state = it->second;
  if (state.complete) {
    return Status::FailedPrecondition(
        StrCat("query ", query_id, " already completed"));
  }
  if (state.terminated) return Status::OK();

  // Salvage whatever the root produced before the executors go away.
  if (const FragmentExecutor* root = FindInstance(state.root_instance)) {
    state.partial_rows = root->Results();
  }
  state.terminated = true;
  state.terminal_status =
      Status::Aborted(StrCat("query ", query_id, " terminated: ", reason));
  state.completion_time = simulator()->Now();
  if (state.deadline_event != kInvalidEventId) {
    simulator()->Cancel(state.deadline_event);
    state.deadline_event = kInvalidEventId;
  }
  if (state.detector_active && detector_ != nullptr) {
    detector_->Deactivate();
    state.detector_active = false;
  }
  // Stop the adaptivity services before their executors vanish.
  state.diagnoser.reset();
  state.responder.reset();
  ReleaseOnAllNodes(query_id);
  if (mirroring_) {
    MirrorEntry entry;
    entry.kind = MirrorEntryKind::kQueryTerminated;
    entry.query_id = query_id;
    entry.rows = state.partial_rows;
    entry.completion_time_ms = state.completion_time;
    Mirror(std::move(entry));
  }
  GQP_LOG_WARN << "query " << query_id << " terminated: " << reason;
  MarkInactive(&state);
  FinishAdmission(&state, /*completed=*/false);
  return Status::OK();
}

bool Gdqs::QueryComplete(int query_id) const {
  auto it = queries_.find(query_id);
  return it != queries_.end() && it->second.complete;
}

FragmentExecutor* Gdqs::FindInstance(const SubplanId& id) const {
  // Every call site passes a root instance, and roots are always placed on
  // the coordinator host; in a sharded run the other nodes' executor maps
  // belong to other shards and must not be read from here.
  const bool sharded = bus()->network()->sharded();
  for (Gqes* g : gqes_) {
    if (sharded && g->host() != host()) continue;
    if (FragmentExecutor* executor = g->FindExecutor(id)) return executor;
  }
  return nullptr;
}

QueryResult Gdqs::BuildResult(const QueryState& state) const {
  QueryResult result;
  result.query_id = state.id;
  result.complete = state.complete;
  result.schema = state.scheduled.plan.result_schema;
  result.submit_time_ms = state.submit_time;
  result.completion_time_ms = state.completion_time;
  result.response_time_ms = state.completion_time - state.submit_time;
  if (state.terminated) {
    // Executors are gone; the salvaged partial rows are the result.
    result.rows = state.partial_rows;
    return result;
  }
  if (const FragmentExecutor* root = FindInstance(state.root_instance)) {
    result.rows = root->Results();
  }
  return result;
}

Result<QueryResult> Gdqs::GetResult(int query_id) const {
  auto term = admission_terminal_.find(query_id);
  if (term != admission_terminal_.end()) {
    // Rejected / queue-terminated queries never produced rows; the result
    // mirrors a terminated query's shape (complete=false).
    QueryResult result;
    result.query_id = query_id;
    result.complete = false;
    result.submit_time_ms = term->second.submit_time;
    result.completion_time_ms = term->second.decided_time;
    result.response_time_ms =
        term->second.decided_time - term->second.submit_time;
    return result;
  }
  if (pending_admissions_.count(query_id) > 0) {
    return Status::FailedPrecondition(
        StrCat("query ", query_id, " still queued for admission"));
  }
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound(StrCat("unknown query ", query_id));
  }
  if (!it->second.failed_deploys.empty()) {
    return Status::Internal(StrCat("query ", query_id, " failed to deploy: ",
                                   StrJoin(it->second.failed_deploys, "; ")));
  }
  return BuildResult(it->second);
}

Result<ScheduledPlan> Gdqs::GetPlan(int query_id) const {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound(StrCat("unknown query ", query_id));
  }
  return it->second.scheduled;
}

Status Gdqs::ExecutionStatus(int query_id) const {
  auto term = admission_terminal_.find(query_id);
  if (term != admission_terminal_.end()) return term->second.status;
  // Still queued: no terminal state yet, no execution error either.
  if (pending_admissions_.count(query_id) > 0) return Status::OK();
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound(StrCat("unknown query ", query_id));
  }
  if (it->second.terminated) return it->second.terminal_status;
  for (Gqes* g : gqes_) {
    for (FragmentExecutor* executor : g->Executors()) {
      if (executor->plan().id.query != query_id) continue;
      if (!executor->execution_status().ok()) {
        return executor->execution_status();
      }
    }
  }
  return Status::OK();
}

Result<QueryStatsSnapshot> Gdqs::CollectStats(int query_id) const {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound(StrCat("unknown query ", query_id));
  }
  const QueryState& state = it->second;
  QueryStatsSnapshot snap;

  for (Gqes* g : gqes_) {
    if (g->med() != nullptr) {
      // MEDs are shared across queries, but every raw event carries its
      // SubplanId: the per-query slice is exact under concurrency (D12).
      const MedStats& med = g->med()->stats_for_query(query_id);
      snap.raw_m1 += med.raw_m1;
      snap.raw_m2 += med.raw_m2;
      snap.med_notifications += med.notifications_out;
    }
    for (FragmentExecutor* executor : g->Executors()) {
      if (executor->plan().id.query != query_id) continue;
      const FragmentStats& fs = executor->stats();
      snap.queue_high_watermark =
          std::max(snap.queue_high_watermark, fs.queue_high_watermark);
      snap.parked_peak = std::max(snap.parked_peak, fs.parked_peak);
      snap.queued_bytes_peak =
          std::max(snap.queued_bytes_peak, fs.queued_bytes_peak);
      snap.credit_grants_sent += fs.credit_grants_sent;
      snap.queue_pressure_events += fs.queue_pressure_events;
      if (executor->producer() != nullptr) {
        const ProducerStats& ps = executor->producer()->stats();
        const CreditLedgerStats& cs = executor->producer()->credit().stats();
        snap.credit_blocked_events += cs.blocked_events;
        snap.peak_outstanding_credit_bytes =
            std::max(snap.peak_outstanding_credit_bytes,
                     cs.peak_outstanding_bytes);
        snap.resent_tuples += ps.resent_tuples;
        if (state.monitored_fragment >= 0 &&
            executor->plan().output.has_value() &&
            executor->plan().output->desc.consumer_fragment ==
                state.monitored_fragment) {
          if (snap.tuples_per_evaluator.size() <
              ps.tuples_to_consumer.size()) {
            snap.tuples_per_evaluator.resize(ps.tuples_to_consumer.size(), 0);
          }
          for (size_t i = 0; i < ps.tuples_to_consumer.size(); ++i) {
            snap.tuples_per_evaluator[i] += ps.tuples_to_consumer[i];
          }
        }
      }
      snap.discarded_tuples +=
          executor->stats().tuples_discarded_in_moves;
    }
  }
  if (bus()->reliable() != nullptr) {
    const ReliableStats& transport =
        bus()->reliable()->stats_for_query(query_id);
    snap.transport_retransmits = transport.retransmits;
    snap.transport_backoffs = transport.backoffs;
  }
  if (state.diagnoser != nullptr) {
    snap.diagnoser_proposals = state.diagnoser->stats().proposals_sent;
    snap.pressure_proposals = state.diagnoser->stats().pressure_proposals;
    snap.first_pressure_proposal_ms =
        state.diagnoser->stats().first_pressure_proposal_ms;
    snap.first_rate_proposal_ms =
        state.diagnoser->stats().first_rate_proposal_ms;
  }
  if (state.responder != nullptr) {
    snap.rounds_started = state.responder->stats().rounds_started;
    snap.rounds_applied = state.responder->stats().rounds_applied;
  }
  return snap;
}

Status Gdqs::ReportNodeFailure(HostId failed_host) {
  if (!registry_->Find(failed_host).ok()) {
    return Status::NotFound(
        StrCat("host ", failed_host, " is not a registered grid node"));
  }
  reported_failures_.insert(failed_host);
  if (mirroring_) {
    MirrorEntry entry;
    entry.kind = MirrorEntryKind::kFailureDecision;
    entry.failed_host = failed_host;
    Mirror(std::move(entry));
  }
  for (auto& [id, state] : queries_) {
    if (state.complete) continue;
    const auto& plan = state.scheduled.plan;
    for (const FragmentDesc& frag : plan.fragments) {
      const auto& hosts =
          state.scheduled.instance_hosts[static_cast<size_t>(frag.id)];
      for (size_t inst = 0; inst < hosts.size(); ++inst) {
        if (hosts[inst] != failed_host) continue;
        const SubplanId dead{state.id, frag.id, static_cast<int>(inst)};

        // Downstream consumers stop waiting for the dead instance's
        // stream (what it already delivered remains valid).
        if (const ExchangeDesc* out = plan.OutputOf(frag.id)) {
          const auto& consumer_hosts =
              state.scheduled
                  .instance_hosts[static_cast<size_t>(out->consumer_fragment)];
          for (size_t c = 0; c < consumer_hosts.size(); ++c) {
            const SubplanId cid{state.id, out->consumer_fragment,
                                static_cast<int>(c)};
            GQP_RETURN_IF_ERROR(
                SendTo(Address{consumer_hosts[c], cid.ToString()},
                       std::make_shared<ProducerLostPayload>(
                           out->id, dead, out->consumer_port,
                           coordinator_epoch_)));
          }
        }

        // Upstream producers stop sending to the dead instance and drop it
        // from any in-flight redistribution round (it can never reply, and
        // the recovery round cannot start until that round closes).
        for (const ExchangeDesc& exch : plan.exchanges) {
          if (exch.consumer_fragment != frag.id) continue;
          const auto& producer_hosts =
              state.scheduled
                  .instance_hosts[static_cast<size_t>(exch.producer_fragment)];
          for (size_t p = 0; p < producer_hosts.size(); ++p) {
            if (producer_hosts[p] == failed_host) continue;
            const SubplanId pid{state.id, exch.producer_fragment,
                                static_cast<int>(p)};
            GQP_RETURN_IF_ERROR(
                SendTo(Address{producer_hosts[p], pid.ToString()},
                       std::make_shared<ConsumerLostPayload>(
                           exch.id, dead, coordinator_epoch_)));
          }
        }

        // Evaluator instances of the monitored fragment are recovered
        // through the Responder (recovery-log redistribution).
        if (frag.id == state.monitored_fragment &&
            state.responder != nullptr) {
          auto notice = std::make_shared<FailureNoticePayload>(
              dead, static_cast<int>(inst));
          GQP_RETURN_IF_ERROR(SendTo(state.responder->address(), notice));
          if (state.diagnoser != nullptr) {
            GQP_RETURN_IF_ERROR(
                SendTo(state.diagnoser->address(), notice));
          }
        } else if (frag.id != state.monitored_fragment &&
                   !frag.IsScanLeaf() && !frag.IsRoot()) {
          GQP_LOG_WARN << "failure of unmonitored fragment instance "
                       << dead.ToString() << " cannot be recovered";
        }
        if (frag.IsScanLeaf() || frag.IsRoot()) {
          return Status::Unimplemented(
              "data-node and coordinator failures are not recoverable");
        }
      }
    }
  }
  return Status::OK();
}

void Gdqs::ReleaseQuery(int query_id) {
  auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    if (it->second.deadline_event != kInvalidEventId) {
      simulator()->Cancel(it->second.deadline_event);
      it->second.deadline_event = kInvalidEventId;
    }
    if (it->second.detector_active && detector_ != nullptr) {
      detector_->Deactivate();
      it->second.detector_active = false;
    }
    MarkInactive(&it->second);
    FinishAdmission(&it->second, it->second.complete);
  }
  ReleaseOnAllNodes(query_id);
  queries_.erase(query_id);
}

void Gdqs::ReleaseOnAllNodes(int query_id) {
  if (bus()->network()->sharded()) {
    // Remote evaluator state belongs to other shards; reach it the way a
    // real coordinator would, by message. The direct call below is a
    // sequential-mode shortcut only.
    for (Gqes* g : gqes_) {
      (void)SendTo(g->address(), std::make_shared<ReleaseQueryPayload>(
                                     query_id, coordinator_epoch_));
    }
    return;
  }
  for (Gqes* g : gqes_) g->ReleaseQuery(query_id);
}

Diagnoser* Gdqs::diagnoser(int query_id) const {
  auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : it->second.diagnoser.get();
}

Responder* Gdqs::responder(int query_id) const {
  auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : it->second.responder.get();
}

}  // namespace gqp
