#include "dqp/admission.h"

#include <algorithm>
#include <iterator>

namespace gqp {

std::string_view RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kShed:
      return "shed";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {}

AdmissionOutcome AdmissionController::OnSubmit(const std::string& tenant,
                                               int query_id,
                                               RejectReason* reason) {
  TenantAdmissionState& t = tenants_[tenant];
  ++t.submitted;
  ++stats_.submitted;
  if (queue_.size() >= config_.queue_capacity) {
    ++t.rejected;
    ++stats_.rejected_queue_full;
    if (reason != nullptr) *reason = RejectReason::kQueueFull;
    return AdmissionOutcome::kRejected;
  }
  queue_.push_back(QueuedEntry{query_id, tenant});
  ++t.queued;
  stats_.queue_peak = std::max(stats_.queue_peak, queue_.size());
  if (reason != nullptr) *reason = RejectReason::kNone;
  return AdmissionOutcome::kQueued;
}

int AdmissionController::NextAdmittable() {
  if (live_ >= config_.max_concurrent_queries) return -1;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    TenantAdmissionState& t = tenants_[it->tenant];
    if (t.inflight >= config_.per_tenant_inflight_cap) continue;
    const int id = it->query_id;
    --t.queued;
    ++t.inflight;
    ++t.admitted;
    ++live_;
    ++stats_.admitted;
    queue_.erase(it);
    return id;
  }
  return -1;
}

uint64_t AdmissionController::BudgetShareBytes() const {
  if (config_.global_memory_budget_bytes == 0) return 0;
  const int live = live_ > 0 ? live_ : 1;
  const uint64_t share =
      config_.global_memory_budget_bytes / static_cast<uint64_t>(live);
  return share > 0 ? share : 1;
}

void AdmissionController::OnQueryFinished(const std::string& tenant,
                                          bool completed) {
  TenantAdmissionState& t = tenants_[tenant];
  if (t.inflight > 0) --t.inflight;
  if (live_ > 0) --live_;
  if (completed) ++t.completed;
}

bool AdmissionController::RemoveQueued(int query_id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->query_id != query_id) continue;
    TenantAdmissionState& t = tenants_[it->tenant];
    if (t.queued > 0) --t.queued;
    queue_.erase(it);
    return true;
  }
  return false;
}

bool AdmissionController::OnPressureEvent(double now_ms) {
  ++stats_.pressure_events;
  if (!config_.shed_enabled) return false;
  pressure_window_.push_back(now_ms);
  while (!pressure_window_.empty() &&
         pressure_window_.front() < now_ms - config_.shed_window_ms) {
    pressure_window_.pop_front();
  }
  if (pressure_window_.size() <
      static_cast<size_t>(config_.shed_pressure_events)) {
    return false;
  }
  if (last_shed_ms_ >= 0.0 &&
      now_ms - last_shed_ms_ < config_.shed_cooldown_ms) {
    return false;
  }
  last_shed_ms_ = now_ms;
  pressure_window_.clear();
  ++stats_.shed_rounds;
  return true;
}

std::string AdmissionController::HeaviestTenant() const {
  std::string heaviest;
  int best_inflight = -1;
  size_t best_queued = 0;
  for (const auto& [name, t] : tenants_) {
    if (t.inflight == 0 && t.queued == 0) continue;
    // Strict > keeps the first (lexicographically smallest) tenant among
    // ties — the documented deterministic tie-break.
    if (t.inflight > best_inflight ||
        (t.inflight == best_inflight && t.queued > best_queued)) {
      heaviest = name;
      best_inflight = t.inflight;
      best_queued = t.queued;
    }
  }
  return heaviest;
}

int AdmissionController::PopNewestQueuedOf(const std::string& tenant) {
  for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
    if (it->tenant != tenant) continue;
    const int id = it->query_id;
    TenantAdmissionState& t = tenants_[tenant];
    if (t.queued > 0) --t.queued;
    ++t.shed;
    ++t.rejected;
    ++stats_.shed_queued;
    queue_.erase(std::next(it).base());
    return id;
  }
  return -1;
}

void AdmissionController::NoteRunningShed(const std::string& tenant) {
  ++tenants_[tenant].shed;
  ++stats_.shed_running;
}

}  // namespace gqp
