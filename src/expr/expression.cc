#include "expr/expression.h"

#include "common/strings.h"
#include "storage/datagen.h"

namespace gqp {

void FunctionRegistry::Register(const std::string& name, Fn fn) {
  fns_[ToUpper(name)] = std::move(fn);
}

Result<FunctionRegistry::Fn> FunctionRegistry::Find(
    const std::string& name) const {
  auto it = fns_.find(ToUpper(name));
  if (it == fns_.end()) {
    return Status::NotFound(StrCat("unknown function '", name, "'"));
  }
  return it->second;
}

bool FunctionRegistry::Contains(const std::string& name) const {
  return fns_.count(ToUpper(name)) > 0;
}

const FunctionRegistry& FunctionRegistry::Builtins() {
  static const FunctionRegistry* registry = [] {
    auto* r = new FunctionRegistry();
    r->Register("ENTROPYANALYSER",
                [](const std::vector<Value>& args) -> Result<Value> {
                  if (args.size() != 1 ||
                      args[0].type() != DataType::kString) {
                    return Status::InvalidArgument(
                        "EntropyAnalyser expects one string argument");
                  }
                  return Value(ShannonEntropy(args[0].AsString()));
                });
    r->Register("LENGTH", [](const std::vector<Value>& args) -> Result<Value> {
      if (args.size() != 1 || args[0].type() != DataType::kString) {
        return Status::InvalidArgument("LENGTH expects one string argument");
      }
      return Value(static_cast<int64_t>(args[0].AsString().size()));
    });
    r->Register("UPPER", [](const std::vector<Value>& args) -> Result<Value> {
      if (args.size() != 1 || args[0].type() != DataType::kString) {
        return Status::InvalidArgument("UPPER expects one string argument");
      }
      return Value(ToUpper(args[0].AsString()));
    });
    return r;
  }();
  return *registry;
}

Result<Value> ColumnRefExpr::Eval(const Tuple& tuple,
                                  const FunctionRegistry*) const {
  if (index_ >= tuple.size()) {
    return Status::OutOfRange(StrCat("column index ", index_,
                                     " out of range for tuple of arity ",
                                     tuple.size()));
  }
  return tuple.at(index_);
}

namespace {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

Result<Value> ComparisonExpr::Eval(const Tuple& tuple,
                                   const FunctionRegistry* registry) const {
  GQP_ASSIGN_OR_RETURN(Value l, left_->Eval(tuple, registry));
  GQP_ASSIGN_OR_RETURN(Value r, right_->Eval(tuple, registry));
  if (l.is_null() || r.is_null()) return Value::Null();

  int cmp;
  if (l == r) {
    cmp = 0;
  } else if (l < r) {
    cmp = -1;
  } else {
    cmp = 1;
  }
  bool out = false;
  switch (op_) {
    case CompareOp::kEq:
      out = cmp == 0;
      break;
    case CompareOp::kNe:
      out = cmp != 0;
      break;
    case CompareOp::kLt:
      out = cmp < 0;
      break;
    case CompareOp::kLe:
      out = cmp <= 0;
      break;
    case CompareOp::kGt:
      out = cmp > 0;
      break;
    case CompareOp::kGe:
      out = cmp >= 0;
      break;
  }
  return Value(static_cast<int64_t>(out ? 1 : 0));
}

std::string ComparisonExpr::ToString() const {
  return StrCat("(", left_->ToString(), " ", CompareOpName(op_), " ",
                right_->ToString(), ")");
}

Result<Value> LogicalExpr::Eval(const Tuple& tuple,
                                const FunctionRegistry* registry) const {
  GQP_ASSIGN_OR_RETURN(Value l, left_->Eval(tuple, registry));
  switch (op_) {
    case LogicalOp::kNot:
      if (l.is_null()) return Value::Null();
      return Value(static_cast<int64_t>(ValueIsTrue(l) ? 0 : 1));
    case LogicalOp::kAnd: {
      if (!l.is_null() && !ValueIsTrue(l)) {
        return Value(static_cast<int64_t>(0));
      }
      GQP_ASSIGN_OR_RETURN(Value r, right_->Eval(tuple, registry));
      // SQL three-valued logic: false dominates null for AND.
      if (!r.is_null() && !ValueIsTrue(r)) {
        return Value(static_cast<int64_t>(0));
      }
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value(static_cast<int64_t>(1));
    }
    case LogicalOp::kOr: {
      if (!l.is_null() && ValueIsTrue(l)) {
        return Value(static_cast<int64_t>(1));
      }
      GQP_ASSIGN_OR_RETURN(Value r, right_->Eval(tuple, registry));
      // SQL three-valued logic: true dominates null for OR.
      if (!r.is_null() && ValueIsTrue(r)) {
        return Value(static_cast<int64_t>(1));
      }
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value(static_cast<int64_t>(0));
    }
  }
  return Status::Internal("unreachable logical op");
}

std::string LogicalExpr::ToString() const {
  switch (op_) {
    case LogicalOp::kNot:
      return StrCat("NOT ", left_->ToString());
    case LogicalOp::kAnd:
      return StrCat("(", left_->ToString(), " AND ", right_->ToString(), ")");
    case LogicalOp::kOr:
      return StrCat("(", left_->ToString(), " OR ", right_->ToString(), ")");
  }
  return "?";
}

Result<Value> ArithmeticExpr::Eval(const Tuple& tuple,
                                   const FunctionRegistry* registry) const {
  GQP_ASSIGN_OR_RETURN(Value l, left_->Eval(tuple, registry));
  GQP_ASSIGN_OR_RETURN(Value r, right_->Eval(tuple, registry));
  if (l.is_null() || r.is_null()) return Value::Null();
  const bool both_int = l.type() == DataType::kInt64 &&
                        r.type() == DataType::kInt64 && op_ != ArithOp::kDiv;
  const double a = l.ToNumeric();
  const double b = r.ToNumeric();
  double out = 0.0;
  switch (op_) {
    case ArithOp::kAdd:
      out = a + b;
      break;
    case ArithOp::kSub:
      out = a - b;
      break;
    case ArithOp::kMul:
      out = a * b;
      break;
    case ArithOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      out = a / b;
      break;
  }
  if (both_int) return Value(static_cast<int64_t>(out));
  return Value(out);
}

std::string ArithmeticExpr::ToString() const {
  const char* name = "?";
  switch (op_) {
    case ArithOp::kAdd:
      name = "+";
      break;
    case ArithOp::kSub:
      name = "-";
      break;
    case ArithOp::kMul:
      name = "*";
      break;
    case ArithOp::kDiv:
      name = "/";
      break;
  }
  return StrCat("(", left_->ToString(), " ", name, " ", right_->ToString(),
                ")");
}

Result<Value> FunctionCallExpr::Eval(const Tuple& tuple,
                                     const FunctionRegistry* registry) const {
  if (registry == nullptr) registry = &FunctionRegistry::Builtins();
  GQP_ASSIGN_OR_RETURN(FunctionRegistry::Fn fn, registry->Find(name_));
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const ExprPtr& arg : args_) {
    GQP_ASSIGN_OR_RETURN(Value v, arg->Eval(tuple, registry));
    args.push_back(std::move(v));
  }
  return fn(args);
}

double FunctionCallExpr::UnitCost() const {
  double cost = 1.0;
  for (const ExprPtr& arg : args_) cost += arg->UnitCost();
  return cost;
}

std::string FunctionCallExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const ExprPtr& arg : args_) parts.push_back(arg->ToString());
  return StrCat(name_, "(", StrJoin(parts, ", "), ")");
}

ExprPtr Col(size_t index, std::string name) {
  return std::make_shared<ColumnRefExpr>(index, std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<ComparisonExpr>(op, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(l),
                                       std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(l),
                                       std::move(r));
}
ExprPtr Not(ExprPtr e) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(e));
}
ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithmeticExpr>(op, std::move(l), std::move(r));
}
ExprPtr Call(std::string name, std::vector<ExprPtr> args) {
  return std::make_shared<FunctionCallExpr>(std::move(name), std::move(args));
}

bool ValueIsTrue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return false;
    case DataType::kInt64:
      return v.AsInt64() != 0;
    case DataType::kDouble:
      return v.AsDouble() != 0.0;
    case DataType::kString:
      return !v.AsString().empty();
  }
  return false;
}

}  // namespace gqp
