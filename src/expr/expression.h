// Expression trees evaluated over tuples: column references, literals,
// comparisons, boolean connectives, arithmetic, and scalar function calls.
//
// Web-service invocations (the paper's "operation call" operator) are NOT
// expressions at runtime — the planner lifts them out of the select list
// into OperationCallOperator — but they appear as FunctionCall nodes in
// parsed queries, and a FunctionRegistry makes them locally evaluable for
// reference results in tests.

#ifndef GRIDQP_EXPR_EXPRESSION_H_
#define GRIDQP_EXPR_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/tuple.h"

namespace gqp {

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

/// Expression node kinds.
enum class ExprKind {
  kColumnRef,
  kLiteral,
  kComparison,
  kLogical,
  kArithmetic,
  kFunctionCall,
};

/// Comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Boolean connectives.
enum class LogicalOp { kAnd, kOr, kNot };

/// Arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Registry of named scalar functions for local evaluation.
class FunctionRegistry {
 public:
  using Fn = std::function<Result<Value>(const std::vector<Value>&)>;

  /// Registers a function (case-insensitive name). Replaces existing.
  void Register(const std::string& name, Fn fn);

  /// Looks up a function; NotFound if absent.
  Result<Fn> Find(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// A registry preloaded with built-ins (ENTROPYANALYSER, LENGTH, UPPER).
  static const FunctionRegistry& Builtins();

 private:
  std::unordered_map<std::string, Fn> fns_;
};

/// \brief An immutable expression node.
class Expression {
 public:
  virtual ~Expression() = default;

  virtual ExprKind kind() const = 0;

  /// Evaluates against a tuple. `registry` resolves FunctionCall nodes and
  /// may be null when the expression contains none.
  virtual Result<Value> Eval(const Tuple& tuple,
                             const FunctionRegistry* registry = nullptr)
      const = 0;

  /// A nominal CPU cost in "cost units" for the planner's bookkeeping.
  virtual double UnitCost() const = 0;

  virtual std::string ToString() const = 0;
};

/// Column reference by position (resolved by the planner).
class ColumnRefExpr : public Expression {
 public:
  ColumnRefExpr(size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  ExprKind kind() const override { return ExprKind::kColumnRef; }
  Result<Value> Eval(const Tuple& tuple,
                     const FunctionRegistry*) const override;
  double UnitCost() const override { return 0.1; }
  std::string ToString() const override { return name_; }

  size_t index() const { return index_; }
  const std::string& name() const { return name_; }

 private:
  size_t index_;
  std::string name_;
};

/// Constant.
class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  ExprKind kind() const override { return ExprKind::kLiteral; }
  Result<Value> Eval(const Tuple&, const FunctionRegistry*) const override {
    return value_;
  }
  double UnitCost() const override { return 0.0; }
  std::string ToString() const override { return value_.ToString(); }

  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Binary comparison; evaluates to int64 0/1 (null if either side null).
class ComparisonExpr : public Expression {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  ExprKind kind() const override { return ExprKind::kComparison; }
  Result<Value> Eval(const Tuple& tuple,
                     const FunctionRegistry* registry) const override;
  double UnitCost() const override {
    return 0.2 + left_->UnitCost() + right_->UnitCost();
  }
  std::string ToString() const override;

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// AND/OR/NOT; NOT uses only the left child.
class LogicalExpr : public Expression {
 public:
  LogicalExpr(LogicalOp op, ExprPtr left, ExprPtr right = nullptr)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  ExprKind kind() const override { return ExprKind::kLogical; }
  Result<Value> Eval(const Tuple& tuple,
                     const FunctionRegistry* registry) const override;
  double UnitCost() const override {
    return 0.1 + left_->UnitCost() + (right_ ? right_->UnitCost() : 0.0);
  }
  std::string ToString() const override;

  LogicalOp op() const { return op_; }

 private:
  LogicalOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// +,-,*,/ over numerics (int64 preserved when both sides are int64,
/// except division which is double).
class ArithmeticExpr : public Expression {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  ExprKind kind() const override { return ExprKind::kArithmetic; }
  Result<Value> Eval(const Tuple& tuple,
                     const FunctionRegistry* registry) const override;
  double UnitCost() const override {
    return 0.2 + left_->UnitCost() + right_->UnitCost();
  }
  std::string ToString() const override;

  ArithOp op() const { return op_; }

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Named scalar function call (including web-service operations at parse
/// time).
class FunctionCallExpr : public Expression {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}

  ExprKind kind() const override { return ExprKind::kFunctionCall; }
  Result<Value> Eval(const Tuple& tuple,
                     const FunctionRegistry* registry) const override;
  double UnitCost() const override;
  std::string ToString() const override;

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

// ---- Convenience factories -------------------------------------------

ExprPtr Col(size_t index, std::string name);
ExprPtr Lit(Value v);
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
ExprPtr Call(std::string name, std::vector<ExprPtr> args);

/// True when the value is non-null and truthy (non-zero / non-empty).
bool ValueIsTrue(const Value& v);

}  // namespace gqp

#endif  // GRIDQP_EXPR_EXPRESSION_H_
