// Open-loop multi-tenant workload driver (D16). Generates a seeded
// arrival schedule for K tenants — Poisson inter-arrivals, optionally
// modulated by a periodic burst profile — over the templated queries
// Q1/Q2/SA, schedules each submission on the deterministic simulation
// clock, and after the run classifies every submitted query into exactly
// one of {Complete, Aborted, Rejected} while measuring per-tenant
// latency percentiles, goodput and rejection/shed counts.
//
// Open-loop means arrivals do not wait for completions: under overload
// the offered rate keeps pressing the coordinator, which is exactly the
// regime the GDQS admission controller is built for. The schedule is
// pregenerated from the config seed alone (one forked RNG stream per
// tenant), so two runs with equal seeds submit byte-identical workloads
// and the whole report renders byte-identically.

#ifndef GRIDQP_WORKLOAD_DRIVER_H_
#define GRIDQP_WORKLOAD_DRIVER_H_

#include <map>
#include <string>
#include <vector>

#include "workload/experiment.h"
#include "workload/grid_setup.h"

namespace gqp {

/// One tenant of the open-loop workload.
struct TenantSpec {
  std::string name;
  /// Mean arrival rate in queries per simulated second (Poisson).
  double arrival_rate_qps = 1.0;
  /// Periodic burst modulation: during the first `burst_duty` fraction of
  /// every `burst_period_ms` window the arrival rate is multiplied by
  /// `burst_multiplier`. A multiplier of 1 (default) is plain Poisson.
  double burst_period_ms = 0.0;
  double burst_duty = 0.25;
  double burst_multiplier = 1.0;
  /// Query-mix weights (need not sum to 1; all zero means Q1 only).
  double weight_q1 = 1.0;
  double weight_q2 = 0.0;
  double weight_scan_agg = 0.0;
};

struct DriverConfig {
  std::vector<TenantSpec> tenants;
  uint64_t seed = 1;
  /// Arrivals are generated in [0, horizon_ms).
  double horizon_ms = 10'000.0;
  /// Global cap on generated arrivals (earliest win; a safety net against
  /// misconfigured rates, not a shaping mechanism).
  size_t max_queries = 5'000;
  /// Per-query deadline handed to the coordinator. Must be positive: the
  /// deadline watchdog is what guarantees queued/stuck queries reach a
  /// terminal state, which the trichotomy invariant depends on.
  double deadline_ms = 8'000.0;
  /// Template for every submission (adaptivity, exec, optimizer,
  /// scheduler knobs); the driver fills tenant, deadline_ms and the
  /// query text per arrival.
  QueryOptions base_options;
};

/// One pregenerated arrival.
struct DriverArrival {
  double time_ms = 0.0;
  int tenant = 0;
  QueryKind kind = QueryKind::kQ1;
  /// Arrival index within the tenant's own stream.
  int seq = 0;
};

/// Terminal classification of one submitted query. kUnresolved means the
/// simulation drained without the query reaching a terminal state — an
/// invariant violation the chaos harness fails on.
enum class QueryOutcome { kComplete, kAborted, kRejected, kUnresolved };

/// Per-query record of the finished run.
struct DriverQueryRecord {
  int query_id = -1;  // -1: submission itself failed (counts as aborted)
  int tenant = 0;
  QueryKind kind = QueryKind::kQ1;
  double submit_ms = 0.0;
  QueryOutcome outcome = QueryOutcome::kUnresolved;
  /// Response time for completed queries (virtual ms).
  double latency_ms = 0.0;
  /// Status string for non-complete outcomes.
  std::string detail;
};

/// Per-tenant aggregates.
struct TenantReport {
  std::string name;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t aborted = 0;
  uint64_t rejected = 0;
  uint64_t unresolved = 0;
  /// Nearest-rank percentiles over completed-query latencies (0 when no
  /// query completed).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  /// Completed queries per simulated second of horizon.
  double goodput_qps = 0.0;
};

struct DriverReport {
  std::vector<DriverQueryRecord> queries;
  std::vector<TenantReport> tenants;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t aborted = 0;
  uint64_t rejected = 0;
  uint64_t unresolved = 0;
  double goodput_qps = 0.0;
  /// True when every submitted query reached exactly one terminal state.
  bool trichotomy_ok = false;

  /// Deterministic multi-line rendering (byte-identical across equal-seed
  /// runs; the tenant-bench compares these directly).
  std::string Render() const;
};

/// Nearest-rank percentile (p in [0,100]) of an unsorted sample; 0 on an
/// empty sample. Exposed for tests.
double NearestRankPercentile(std::vector<double> sample, double p);

/// \brief Drives one grid with the configured open-loop workload.
///
/// Usage: construct, GenerateArrivals() happens eagerly; ScheduleArrivals
/// before grid->simulator()->Run(); Collect afterwards.
class WorkloadDriver {
 public:
  explicit WorkloadDriver(const DriverConfig& config);

  /// The pregenerated schedule, sorted by (time, tenant, seq).
  const std::vector<DriverArrival>& arrivals() const { return arrivals_; }

  /// Schedules every arrival on the grid's simulation clock. Submissions
  /// to a dead coordinator (mid-failover) fail client-side and count as
  /// aborted. Call once per grid, before Run().
  void ScheduleArrivals(GridSetup* grid);

  /// Classifies every submission and computes the report. Call after the
  /// simulation drained.
  DriverReport Collect(GridSetup* grid) const;

 private:
  void Generate();
  void SubmitArrival(GridSetup* grid, size_t index);

  DriverConfig config_;
  std::vector<DriverArrival> arrivals_;
  /// Parallel to arrivals_ after ScheduleArrivals: query id or -1, the
  /// submission-failure detail, and which coordinator took the query
  /// (post-takeover arrivals go to the standby's inner GDQS).
  std::vector<int> query_ids_;
  std::vector<std::string> submit_errors_;
  std::vector<char> submitted_to_standby_;
};

}  // namespace gqp

#endif  // GRIDQP_WORKLOAD_DRIVER_H_
