// Experiment runner shared by the benchmark harness, examples and
// integration tests. Builds a fresh grid per repetition, loads the
// paper's (synthetic) protein datasets, applies the requested
// perturbations, runs Q1 or Q2 under a given adaptivity policy, and
// reports averaged response times plus execution statistics.

#ifndef GRIDQP_WORKLOAD_EXPERIMENT_H_
#define GRIDQP_WORKLOAD_EXPERIMENT_H_

#include <string>
#include <vector>

#include "workload/grid_setup.h"

namespace gqp {

/// The paper's two evaluation queries plus the scan-aggregate template of
/// the multi-tenant workload driver (D16): a grouped count over
/// protein_interactions, executed as a partitioned stateful hash
/// aggregate (retrospective response only, like Q2).
enum class QueryKind { kQ1, kQ2, kScanAgg };

/// Short stable name ("Q1", "Q2", "SA") for reports and repro commands.
std::string QueryKindName(QueryKind kind);

/// SQL text of the paper's queries.
std::string QuerySql(QueryKind kind);

/// Perturbation applied to one evaluator machine.
struct PerturbSpec {
  enum class Kind {
    kNone,
    /// Operation k times costlier (paper's busy-loop method).
    kFactor,
    /// Fixed added delay per tuple (paper's sleep() method).
    kSleep,
    /// Per-tuple factor ~ truncated N(mean, sd) in [lo, hi] (Fig. 5).
    kGaussianFactor,
  };

  int evaluator = 0;
  Kind kind = Kind::kNone;
  double factor = 1.0;    // kFactor
  double sleep_ms = 0.0;  // kSleep
  double mean = 1.0;      // kGaussianFactor
  double stddev = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

struct ExperimentParams {
  std::string name;
  QueryKind query = QueryKind::kQ1;

  // --- dataset -----------------------------------------------------------
  /// protein_sequences cardinality (paper: 3000; Fig. 3(b): 6000).
  size_t sequences = 3000;
  /// protein_interactions cardinality (paper: 4700).
  size_t interactions = 4700;
  size_t sequence_length = 200;

  // --- grid ---------------------------------------------------------------
  int num_evaluators = 2;
  /// Runs the heartbeat failure detector and reliable control-plane
  /// transport (the control-plane tax the overhead bench guards).
  bool failure_detection = false;
  /// Credit-based flow control (D11): bounded queues under a per-query
  /// memory budget. The overhead bench guards its no-overload tax.
  bool flow_control = false;
  /// Per-query budget split evenly across exchange links (0 = unlimited
  /// window: credit machinery idles even with flow_control on).
  size_t memory_budget_bytes = 0;
  /// Replicated-coordinator mode (D14): a standby GDQS mirrors every
  /// coordinator decision over the control plane. The overhead bench
  /// guards the mirroring tax; when off, nothing failover-related exists.
  bool coordinator_standby = false;
  /// GDQS admission control (D16) with its default caps — wide enough
  /// that a single query admits instantly. The overhead bench guards the
  /// no-contention tax; when off, the submission path is untouched.
  bool admission_control = false;

  // --- adaptivity -----------------------------------------------------------
  bool adaptivity = true;
  AssessmentType assessment = AssessmentType::kA1;
  ResponseType response = ResponseType::kProspective;
  size_t m1_frequency = 10;
  size_t med_window = 25;
  double thres_m = 0.20;
  double thres_a = 0.20;

  // --- perturbations ---------------------------------------------------------
  std::vector<PerturbSpec> perturbations;
  /// Mild per-tuple noise factor (relative stddev) applied to explicitly
  /// perturbed evaluators on top of their constant factor. 0 disables.
  double noise_stddev = 0.05;
  /// Natural load fluctuation on unperturbed evaluators: stationary
  /// stddev of the log cost factor (Ornstein-Uhlenbeck drift) and its
  /// correlation time. Models the paper's "slight fluctuations ... of a
  /// real wide-area environment" that occasionally trigger adaptations
  /// even without injected imbalance. 0 disables.
  double drift_sigma = 0.35;
  double drift_tau_ms = 250.0;

  // --- cost model -------------------------------------------------------------
  /// Per-tuple data-node cost (retrieval + wrapper). Calibrated per query
  /// in EXPERIMENTS.md.
  double scan_cost_ms = 0.30;
  double ws_cost_ms = 0.21;
  double join_probe_cost_ms = 1.0;
  double join_build_cost_ms = 0.5;
  /// Q2 runs ship tuples through slower GDS wrappers; when >0 overrides
  /// scan_cost_ms for Q2.
  double q2_scan_cost_ms = 3.5;

  // --- run control ---------------------------------------------------------
  int repetitions = 3;
  uint64_t seed = 1;
};

struct ExperimentResult {
  bool ok = false;
  std::string error;
  /// Mean response time over repetitions (virtual ms).
  double response_ms = 0.0;
  std::vector<double> rep_times_ms;
  size_t result_rows = 0;
  /// Stats from the last repetition.
  QueryStatsSnapshot stats;
};

/// Runs the experiment. Each repetition builds an isolated grid seeded
/// with `seed + rep`.
ExperimentResult RunExperiment(const ExperimentParams& params);

/// The operation tag a query's perturbations target ("ws:EntropyAnalyser"
/// for Q1, the join tag for Q2).
std::string PerturbTag(QueryKind kind);

/// response / baseline, guarding division by zero.
double Normalized(const ExperimentResult& result,
                  const ExperimentResult& baseline);

}  // namespace gqp

#endif  // GRIDQP_WORKLOAD_EXPERIMENT_H_
