#include "workload/grid_setup.h"

#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

GridSetup::GridSetup(const GridOptions& options) : options_(options) {
  network_ = std::make_unique<Network>(&sim_, options_.link);
  if (options_.shards > 1) {
    const double lookahead = options_.lookahead_override_ms > 0.0
                                 ? options_.lookahead_override_ms
                                 : options_.link.latency_ms;
    // An invalid lookahead leaves ssim_ null; Initialize reports it as a
    // Status instead of aborting in the kernel's constructor.
    if (lookahead > 0.0) {
      ssim_ = std::make_unique<ShardedSimulator>(options_.shards, lookahead);
      network_->EnableSharding(ssim_.get());
    }
  }
  if (options_.shard_rng_streams) network_->ForceShardRngStreams();
  if (options_.loss_rate > 0.0) {
    network_->SeedLoss(options_.loss_seed);
    network_->SetDefaultLoss(options_.loss_rate);
  }
  bus_ = std::make_unique<MessageBus>(network_.get());
  if (options_.reliable.enabled) {
    bus_->EnableReliableTransport(options_.reliable);
  }
}

GridSetup::~GridSetup() = default;

Status GridSetup::Initialize() {
  if (initialized_) return Status::OK();
  if (options_.num_evaluators < 1) {
    return Status::InvalidArgument("need at least one evaluator");
  }
  if (options_.shards > 1) {
    if (ssim_ == nullptr) {
      return Status::InvalidArgument(
          "sharded execution needs a positive lookahead (zero-latency links "
          "leave no conservative synchronization window)");
    }
    if (options_.standby_enabled) {
      return Status::InvalidArgument(
          "sharded execution is incompatible with the standby coordinator "
          "(D14 failover mutates cross-host state outside the shard "
          "protocol)");
    }
  }

  // Host ids: 0 coordinator, 1 data node, 2.. evaluators (then the
  // standby, when enabled, at 2 + num_evaluators).
  nodes_.push_back(
      std::make_unique<GridNode>(SimForHost(0), 0, "coordinator", 1.0));
  nodes_.push_back(std::make_unique<GridNode>(SimForHost(1), 1, "data", 1.0));
  for (int i = 0; i < options_.num_evaluators; ++i) {
    const double capacity =
        static_cast<size_t>(i) < options_.evaluator_capacities.size()
            ? options_.evaluator_capacities[static_cast<size_t>(i)]
            : 1.0;
    const HostId id = static_cast<HostId>(2 + i);
    nodes_.push_back(std::make_unique<GridNode>(
        SimForHost(id), id, StrCat("evaluator", i), capacity));
  }
  if (options_.standby_enabled) {
    nodes_.push_back(std::make_unique<GridNode>(
        &sim_, static_cast<HostId>(2 + options_.num_evaluators), "standby",
        1.0));
  }

  // Sharded runs must never grow the per-host vectors of the bus or the
  // reliable transport while workers are live: pre-create every slot now.
  if (ssim_ != nullptr) {
    for (auto& node : nodes_) bus_->EnsureHost(node->id());
    if (bus_->reliable() != nullptr) {
      bus_->reliable()->EnsureHosts(static_cast<int>(nodes_.size()));
    }
  }

  GQP_RETURN_IF_ERROR(
      registry_.Register(nodes_[0].get(), NodeRole::kCoordinator));
  GQP_RETURN_IF_ERROR(registry_.Register(nodes_[1].get(), NodeRole::kData));
  for (int i = 0; i < options_.num_evaluators; ++i) {
    GQP_RETURN_IF_ERROR(registry_.Register(
        nodes_[static_cast<size_t>(2 + i)].get(), NodeRole::kCompute));
  }
  if (options_.standby_enabled) {
    // kCoordinator keeps the standby out of the scheduler's compute pool.
    GQP_RETURN_IF_ERROR(
        registry_.Register(nodes_.back().get(), NodeRole::kCoordinator));
  }

  for (auto& node : nodes_) {
    auto gqes = std::make_unique<Gqes>(bus_.get(), node.get(), network_.get(),
                                       options_.adaptive, options_.med);
    GQP_RETURN_IF_ERROR(gqes->StartService());
    gqes_.push_back(std::move(gqes));
  }

  gdqs_ = std::make_unique<Gdqs>(bus_.get(), nodes_[0].get(), network_.get(),
                                 &catalog_, &registry_);
  GQP_RETURN_IF_ERROR(gdqs_->Start());
  for (auto& gqes : gqes_) gdqs_->AddGqes(gqes.get());
  if (options_.max_active_queries > 0) {
    gdqs_->set_max_active_queries(options_.max_active_queries);
  }
  // After AddGqes: the pressure subscription covers every known host.
  gdqs_->ConfigureAdmission(options_.admission);

  if (options_.detect.enabled) {
    monitor_ = std::make_unique<HeartbeatMonitor>(bus_.get(), nodes_[0]->id(),
                                                  options_.detect);
    GQP_RETURN_IF_ERROR(monitor_->Start());
    for (int i = 0; i < options_.num_evaluators; ++i) {
      GridNode* node = evaluator_node(i);
      auto hb = std::make_unique<Heartbeater>(bus_.get(), node,
                                              monitor_->address());
      GQP_RETURN_IF_ERROR(hb->Start());
      monitor_->Watch(node->id(), hb->address());
      heartbeaters_.push_back(std::move(hb));
    }
    monitor_->set_on_confirm([this](HostId host) {
      const Status s = gdqs_->ReportNodeFailure(host);
      if (!s.ok()) {
        GQP_LOG_WARN << "recovery after detected failure of host " << host
                     << " failed: " << s.ToString();
      }
    });
    // Re-admission needs no recovery action: the host's in-flight work was
    // already fenced and recovered around when the failure was confirmed;
    // from now on the scheduler may simply use it again. (If it actually
    // dies later, detection re-confirms and ReportNodeFailure dedups.)
    monitor_->set_on_readmit([](HostId host) {
      GQP_LOG_INFO << "host " << host
                   << " re-admitted after false failure suspicion";
    });
    // The primary's monitor dies with the primary (D14): without the
    // binding a coordinator kill would leave the watch timer scanning —
    // and keeping the simulation alive — forever.
    monitor_->BindNode(nodes_[0].get());
    gdqs_->SetFailureDetector(monitor_.get());
  }

  if (options_.standby_enabled) {
    GridNode* standby_node = nodes_.back().get();
    DetectConfig watch = options_.detect;
    watch.enabled = true;
    // The standby watches exactly one host; confirming it IS the
    // takeover trigger, so the last-survivor guard must stand aside.
    watch.allow_last_survivor_confirm = true;
    standby_ = std::make_unique<StandbyCoordinator>(
        bus_.get(), standby_node, network_.get(), &catalog_, &registry_,
        watch, gdqs_->address());
    GQP_RETURN_IF_ERROR(standby_->Initialize());
    for (auto& gqes : gqes_) standby_->AddGqes(gqes.get());
    standby_->ConfigureAdmission(options_.admission);
    primary_heartbeater_ = std::make_unique<Heartbeater>(
        bus_.get(), nodes_[0].get(), standby_->monitor()->address());
    GQP_RETURN_IF_ERROR(primary_heartbeater_->Start());
    standby_->monitor()->Watch(nodes_[0]->id(),
                               primary_heartbeater_->address());
    gdqs_->EnableMirroring(standby_->address());
  }

  initialized_ = true;
  return Status::OK();
}

Gqes* GridSetup::gqes_on(HostId host) {
  for (auto& gqes : gqes_) {
    if (gqes->host() == host) return gqes.get();
  }
  return nullptr;
}

Status GridSetup::AddTable(TablePtr table) {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  TableEntry entry;
  entry.name = table->name();
  entry.schema = table->schema();
  entry.data_host = data_node()->id();
  entry.stats.num_rows = table->num_rows();
  entry.stats.avg_row_bytes =
      table->num_rows() > 0 ? table->TotalWireSize() / table->num_rows() : 0;
  GQP_RETURN_IF_ERROR(catalog_.RegisterTable(std::move(entry)));
  gqes_on(data_node()->id())->RegisterTable(std::move(table));
  return Status::OK();
}

Status GridSetup::AddWebService(const std::string& name, DataType result_type,
                                double nominal_cost_ms) {
  WebServiceEntry entry;
  entry.name = name;
  entry.result_type = result_type;
  entry.nominal_cost_ms = nominal_cost_ms;
  return catalog_.RegisterWebService(std::move(entry));
}

Status GridSetup::PerturbEvaluator(int i, const std::string& tag,
                                   PerturbationPtr profile) {
  if (i < 0 || i >= options_.num_evaluators) {
    return Status::OutOfRange(StrCat("no evaluator ", i));
  }
  evaluator_node(i)->SetPerturbation(tag, std::move(profile));
  return Status::OK();
}

Status GridSetup::FailEvaluator(int i) {
  if (i < 0 || i >= options_.num_evaluators) {
    return Status::OutOfRange(StrCat("no evaluator ", i));
  }
  GridNode* node = evaluator_node(i);
  node->Kill();
  network_->SetHostDown(node->id());
  // With the detector running, the kill is silent: the coordinator learns
  // of it only through missed heartbeats (suspect -> confirm -> recover).
  if (monitor_ != nullptr) return Status::OK();
  return gdqs_->ReportNodeFailure(node->id());
}

Status GridSetup::FailCoordinator() {
  if (standby_ == nullptr) {
    return Status::FailedPrecondition(
        "coordinator kill requires a standby (options.standby_enabled)");
  }
  nodes_[0]->Kill();
  network_->SetHostDown(nodes_[0]->id());
  // A dead process takes its timers with it.
  gdqs_->CancelDeadlineWatchdogs();
  // Always silent: only the standby's missed-heartbeat watch may notice.
  return Status::OK();
}

}  // namespace gqp
