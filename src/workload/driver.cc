#include "workload/driver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"

namespace gqp {

namespace {

/// Fixed-precision rendering so reports are byte-identical across runs
/// and platforms (never locale- or %g-dependent).
std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Arrival rate (queries per simulated second) in effect at time t.
double EffectiveRate(const TenantSpec& spec, double t_ms) {
  double rate = spec.arrival_rate_qps;
  if (spec.burst_period_ms > 0.0 && spec.burst_multiplier != 1.0) {
    const double phase = std::fmod(t_ms, spec.burst_period_ms);
    if (phase < spec.burst_duty * spec.burst_period_ms) {
      rate *= spec.burst_multiplier;
    }
  }
  return rate;
}

QueryKind DrawKind(const TenantSpec& spec, Rng* rng) {
  const double total =
      spec.weight_q1 + spec.weight_q2 + spec.weight_scan_agg;
  if (total <= 0.0) return QueryKind::kQ1;
  const double u = rng->NextDouble() * total;
  if (u < spec.weight_q1) return QueryKind::kQ1;
  if (u < spec.weight_q1 + spec.weight_q2) return QueryKind::kQ2;
  return QueryKind::kScanAgg;
}

}  // namespace

double NearestRankPercentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sample.size())));
  if (rank == 0) rank = 1;
  return sample[rank - 1];
}

WorkloadDriver::WorkloadDriver(const DriverConfig& config)
    : config_(config) {
  Generate();
}

void WorkloadDriver::Generate() {
  for (size_t t = 0; t < config_.tenants.size(); ++t) {
    const TenantSpec& spec = config_.tenants[t];
    if (spec.arrival_rate_qps <= 0.0) continue;
    // One independent stream per tenant: adding or re-ordering tenants
    // never perturbs another tenant's arrivals.
    Rng rng(config_.seed + 0x9E3779B97F4A7C15ull * (t + 1));
    double now = 0.0;
    int seq = 0;
    while (now < config_.horizon_ms) {
      // Exponential inter-arrival at the rate in effect now (a burst
      // window entered mid-gap shortens only the NEXT draw — a standard
      // piecewise approximation, and deterministic).
      const double rate = EffectiveRate(spec, now);
      const double u = rng.NextDouble();
      now += -std::log(1.0 - u) * 1000.0 / rate;
      if (now >= config_.horizon_ms) break;
      DriverArrival arrival;
      arrival.time_ms = now;
      arrival.tenant = static_cast<int>(t);
      arrival.kind = DrawKind(spec, &rng);
      arrival.seq = seq++;
      arrivals_.push_back(arrival);
    }
  }
  std::sort(arrivals_.begin(), arrivals_.end(),
            [](const DriverArrival& a, const DriverArrival& b) {
              if (a.time_ms != b.time_ms) return a.time_ms < b.time_ms;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.seq < b.seq;
            });
  if (arrivals_.size() > config_.max_queries) {
    arrivals_.resize(config_.max_queries);
  }
}

void WorkloadDriver::ScheduleArrivals(GridSetup* grid) {
  query_ids_.assign(arrivals_.size(), -1);
  submit_errors_.assign(arrivals_.size(), "");
  submitted_to_standby_.assign(arrivals_.size(), 0);
  for (size_t i = 0; i < arrivals_.size(); ++i) {
    grid->simulator()->ScheduleAt(
        arrivals_[i].time_ms,
        [this, grid, i] { SubmitArrival(grid, i); });
  }
}

void WorkloadDriver::SubmitArrival(GridSetup* grid, size_t index) {
  const DriverArrival& arrival = arrivals_[static_cast<size_t>(index)];
  Gdqs* target = grid->gdqs();
  if (grid->coordinator_node()->dead()) {
    // Clients re-resolve the coordinator: after a takeover they submit to
    // the standby's inner GDQS; during the failover gap the submission
    // fails client-side (a terminal, counted outcome — not a hang).
    if (grid->standby() != nullptr && grid->standby()->TakenOver()) {
      target = grid->standby()->gdqs();
      submitted_to_standby_[index] = 1;
    } else {
      submit_errors_[index] = "coordinator unreachable (failover pending)";
      return;
    }
  }
  QueryOptions options = config_.base_options;
  options.tenant = config_.tenants[static_cast<size_t>(arrival.tenant)].name;
  options.deadline_ms = config_.deadline_ms;
  Result<int> id = target->SubmitQuery(QuerySql(arrival.kind), options);
  if (!id.ok()) {
    submit_errors_[index] = id.status().ToString();
    return;
  }
  query_ids_[index] = *id;
}

DriverReport WorkloadDriver::Collect(GridSetup* grid) const {
  DriverReport report;
  report.tenants.resize(config_.tenants.size());
  for (size_t t = 0; t < config_.tenants.size(); ++t) {
    report.tenants[t].name = config_.tenants[t].name;
  }
  std::vector<std::vector<double>> latencies(config_.tenants.size());

  StandbyCoordinator* standby = grid->standby();
  const bool taken_over = standby != nullptr && standby->TakenOver();

  for (size_t i = 0; i < arrivals_.size(); ++i) {
    const DriverArrival& arrival = arrivals_[i];
    DriverQueryRecord record;
    record.query_id = query_ids_.empty() ? -1 : query_ids_[i];
    record.tenant = arrival.tenant;
    record.kind = arrival.kind;
    record.submit_ms = arrival.time_ms;

    TenantReport& tenant = report.tenants[static_cast<size_t>(arrival.tenant)];
    ++tenant.submitted;
    ++report.submitted;

    if (record.query_id < 0) {
      record.outcome = QueryOutcome::kAborted;
      record.detail = submit_errors_.empty() ? "never scheduled"
                                             : submit_errors_[i];
    } else {
      // Resolve against the authority that owns the query now: the
      // standby's inner GDQS for post-takeover submissions, the standby's
      // client view (original ids) for pre-crash ones after a takeover,
      // the primary otherwise.
      const bool via_standby = submitted_to_standby_[i] != 0;
      bool complete = false;
      Status status = Status::OK();
      double latency = 0.0;
      if (via_standby) {
        complete = standby->gdqs()->QueryComplete(record.query_id);
        status = standby->gdqs()->ExecutionStatus(record.query_id);
        if (complete) {
          Result<QueryResult> result =
              standby->gdqs()->GetResult(record.query_id);
          if (result.ok()) latency = result->response_time_ms;
        }
      } else if (taken_over) {
        complete = standby->QueryComplete(record.query_id);
        status = standby->ExecutionStatus(record.query_id);
        if (complete) {
          Result<QueryResult> result = standby->GetResult(record.query_id);
          if (result.ok()) latency = result->response_time_ms;
        }
      } else {
        complete = grid->gdqs()->QueryComplete(record.query_id);
        status = grid->gdqs()->ExecutionStatus(record.query_id);
        if (complete) {
          Result<QueryResult> result = grid->gdqs()->GetResult(record.query_id);
          if (result.ok()) latency = result->response_time_ms;
        }
      }
      if (complete) {
        record.outcome = QueryOutcome::kComplete;
        record.latency_ms = latency;
      } else if (status.IsRejected()) {
        record.outcome = QueryOutcome::kRejected;
        record.detail = status.ToString();
      } else if (!status.ok()) {
        record.outcome = QueryOutcome::kAborted;
        record.detail = status.ToString();
      } else {
        record.outcome = QueryOutcome::kUnresolved;
        record.detail = "simulation drained without a terminal status";
      }
    }

    switch (record.outcome) {
      case QueryOutcome::kComplete:
        ++tenant.completed;
        ++report.completed;
        latencies[static_cast<size_t>(arrival.tenant)].push_back(
            record.latency_ms);
        break;
      case QueryOutcome::kAborted:
        ++tenant.aborted;
        ++report.aborted;
        break;
      case QueryOutcome::kRejected:
        ++tenant.rejected;
        ++report.rejected;
        break;
      case QueryOutcome::kUnresolved:
        ++tenant.unresolved;
        ++report.unresolved;
        break;
    }
    report.queries.push_back(std::move(record));
  }

  const double horizon_s = config_.horizon_ms / 1000.0;
  for (size_t t = 0; t < report.tenants.size(); ++t) {
    TenantReport& tenant = report.tenants[t];
    const std::vector<double>& sample = latencies[t];
    tenant.p50_ms = NearestRankPercentile(sample, 50.0);
    tenant.p95_ms = NearestRankPercentile(sample, 95.0);
    tenant.p99_ms = NearestRankPercentile(sample, 99.0);
    if (!sample.empty()) {
      double total = 0.0;
      for (double v : sample) total += v;
      tenant.mean_ms = total / static_cast<double>(sample.size());
    }
    if (horizon_s > 0.0) {
      tenant.goodput_qps =
          static_cast<double>(tenant.completed) / horizon_s;
    }
  }
  if (horizon_s > 0.0) {
    report.goodput_qps = static_cast<double>(report.completed) / horizon_s;
  }
  report.trichotomy_ok = report.unresolved == 0;
  return report;
}

std::string DriverReport::Render() const {
  std::string out =
      StrCat("workload: submitted=", submitted, " completed=", completed,
             " aborted=", aborted, " rejected=", rejected,
             " unresolved=", unresolved, " goodput=", Fmt(goodput_qps),
             "qps trichotomy=", trichotomy_ok ? "ok" : "VIOLATED", "\n");
  for (const TenantReport& tenant : tenants) {
    out += StrCat("tenant ", tenant.name, ": submitted=", tenant.submitted,
                  " completed=", tenant.completed,
                  " aborted=", tenant.aborted,
                  " rejected=", tenant.rejected,
                  " unresolved=", tenant.unresolved,
                  " p50=", Fmt(tenant.p50_ms), "ms p95=", Fmt(tenant.p95_ms),
                  "ms p99=", Fmt(tenant.p99_ms),
                  "ms mean=", Fmt(tenant.mean_ms),
                  "ms goodput=", Fmt(tenant.goodput_qps), "qps\n");
  }
  return out;
}

}  // namespace gqp
