// GridSetup: assembles a complete simulated grid — simulator, network,
// bus, nodes (coordinator + data node + N evaluators), GQES services, the
// GDQS coordinator, catalog and registry — mirroring the paper's testbed
// topology (two/three evaluation machines plus a third machine that
// "retrieves and sends data as fast as it can").

#ifndef GRIDQP_WORKLOAD_GRID_SETUP_H_
#define GRIDQP_WORKLOAD_GRID_SETUP_H_

#include <memory>
#include <string>
#include <vector>

#include "dqp/gdqs.h"

namespace gqp {

struct GridOptions {
  int num_evaluators = 2;
  /// Capacity of each evaluator (heterogeneous grids use unequal values).
  std::vector<double> evaluator_capacities;
  LinkParams link;  // defaults model the paper's 100 Mbps LAN
  /// Create MEDs on every node (AGQES mode).
  bool adaptive = true;
  MonitoringEventDetectorConfig med;
};

/// \brief Owns one simulated grid and all its services.
class GridSetup {
 public:
  explicit GridSetup(const GridOptions& options);
  ~GridSetup();

  GridSetup(const GridSetup&) = delete;
  GridSetup& operator=(const GridSetup&) = delete;

  /// Builds services; must be called once before use.
  Status Initialize();

  Simulator* simulator() { return &sim_; }
  Network* network() { return network_.get(); }
  MessageBus* bus() { return bus_.get(); }
  Catalog* catalog() { return &catalog_; }
  ResourceRegistry* registry() { return &registry_; }
  Gdqs* gdqs() { return gdqs_.get(); }

  GridNode* coordinator_node() { return nodes_[0].get(); }
  GridNode* data_node() { return nodes_[1].get(); }
  GridNode* evaluator_node(int i) { return nodes_[static_cast<size_t>(2 + i)].get(); }
  int num_evaluators() const { return options_.num_evaluators; }
  Gqes* gqes_on(HostId host);

  /// Registers a table on the data node (as a Grid Data Service) and in
  /// the catalog.
  Status AddTable(TablePtr table);

  /// Registers a web-service operation usable from queries, with its
  /// nominal per-call cost.
  Status AddWebService(const std::string& name, DataType result_type,
                       double nominal_cost_ms);

  /// Installs a perturbation profile for an operation tag on evaluator i.
  Status PerturbEvaluator(int i, const std::string& tag,
                          PerturbationPtr profile);

  /// Crashes evaluator i: its machine stops executing, the network drops
  /// its traffic, and the coordinator is informed so running queries
  /// recover the machine's unacknowledged work from the recovery logs.
  Status FailEvaluator(int i);

 private:
  GridOptions options_;
  Simulator sim_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<MessageBus> bus_;
  Catalog catalog_;
  ResourceRegistry registry_;
  std::vector<std::unique_ptr<GridNode>> nodes_;
  std::vector<std::unique_ptr<Gqes>> gqes_;
  std::unique_ptr<Gdqs> gdqs_;
  bool initialized_ = false;
};

}  // namespace gqp

#endif  // GRIDQP_WORKLOAD_GRID_SETUP_H_
