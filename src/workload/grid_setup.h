// GridSetup: assembles a complete simulated grid — simulator, network,
// bus, nodes (coordinator + data node + N evaluators), GQES services, the
// GDQS coordinator, catalog and registry — mirroring the paper's testbed
// topology (two/three evaluation machines plus a third machine that
// "retrieves and sends data as fast as it can").

#ifndef GRIDQP_WORKLOAD_GRID_SETUP_H_
#define GRIDQP_WORKLOAD_GRID_SETUP_H_

#include <memory>
#include <string>
#include <vector>

#include "detect/heartbeater.h"
#include "detect/monitor.h"
#include "dqp/gdqs.h"
#include "dqp/standby.h"

namespace gqp {

struct GridOptions {
  int num_evaluators = 2;
  /// Capacity of each evaluator (heterogeneous grids use unequal values).
  std::vector<double> evaluator_capacities;
  LinkParams link;  // defaults model the paper's 100 Mbps LAN
  /// Create MEDs on every node (AGQES mode).
  bool adaptive = true;
  MonitoringEventDetectorConfig med;
  /// Reliable control-plane delivery (off: raw sends, legacy behavior).
  ReliableConfig reliable;
  /// Heartbeat failure detection (off: FailEvaluator reports directly).
  DetectConfig detect;
  /// Uniform message-drop probability of the network fabric.
  double loss_rate = 0.0;
  /// Seed of the loss model's RNG (scenarios derive it from their seed).
  uint64_t loss_seed = 0;
  /// Replicated-coordinator mode (D14): adds a standby node (host
  /// 2 + num_evaluators) running a StandbyCoordinator that mirrors the
  /// GDQS and takes over on its confirmed death. Off by default — when
  /// off, nothing failover-related exists in the grid.
  bool standby_enabled = false;
  /// Event shards of the conservative parallel kernel (D15). 1 = the
  /// classic sequential simulator, byte-identical to every release before
  /// sharding existed. >1 partitions hosts over shards (host % shards),
  /// each with its own event heap and worker thread, synchronized by
  /// link-latency lookahead. Incompatible with standby_enabled.
  int shards = 1;
  /// Conservative lookahead in simulated ms; 0 derives it from
  /// link.latency_ms. Callers that later reconfigure links to lower
  /// latencies MUST pass the minimum latency the run will ever see.
  double lookahead_override_ms = 0.0;
  /// Use the sharded kernel's RNG streams (counter-hash per-link loss,
  /// per-host retransmit jitter) even with shards=1, so a sequential
  /// reference run draws the same loss/jitter pattern as sharded runs
  /// (differential suite). Defaults off: golden traces depend on the two
  /// classic global streams.
  bool shard_rng_streams = false;
  /// GDQS admission control (D16). Off by default: the submission path is
  /// byte-identical to every release before admission existed. When
  /// enabled, the same config is installed on the standby's inner GDQS so
  /// a takeover enforces the same caps.
  AdmissionConfig admission;
  /// Hard cap on simultaneously-registered queries (satellite backstop;
  /// 0 keeps the Gdqs default of one million).
  size_t max_active_queries = 0;
};

/// \brief Owns one simulated grid and all its services.
class GridSetup {
 public:
  explicit GridSetup(const GridOptions& options);
  ~GridSetup();

  GridSetup(const GridSetup&) = delete;
  GridSetup& operator=(const GridSetup&) = delete;

  /// Builds services; must be called once before use.
  Status Initialize();

  Simulator* simulator() { return &sim_; }
  /// Null unless options.shards > 1.
  ShardedSimulator* sharded_simulator() { return ssim_.get(); }
  /// The simulator driving `host`'s events: its shard's in a sharded
  /// grid, the sequential one otherwise.
  Simulator* SimForHost(HostId host) {
    return ssim_ != nullptr
               ? ssim_->shard(static_cast<int>(host) % ssim_->num_shards())
               : &sim_;
  }
  Network* network() { return network_.get(); }
  MessageBus* bus() { return bus_.get(); }
  Catalog* catalog() { return &catalog_; }
  ResourceRegistry* registry() { return &registry_; }
  Gdqs* gdqs() { return gdqs_.get(); }

  GridNode* coordinator_node() { return nodes_[0].get(); }
  GridNode* data_node() { return nodes_[1].get(); }
  GridNode* evaluator_node(int i) { return nodes_[static_cast<size_t>(2 + i)].get(); }
  int num_evaluators() const { return options_.num_evaluators; }
  /// Total host count including the standby node when enabled (invariant
  /// checks must scan the standby's executors: retried queries root there).
  int num_hosts() const { return static_cast<int>(nodes_.size()); }
  Gqes* gqes_on(HostId host);

  /// Null unless options.detect.enabled.
  HeartbeatMonitor* monitor() { return monitor_.get(); }
  Heartbeater* heartbeater(int i) {
    return static_cast<size_t>(i) < heartbeaters_.size()
               ? heartbeaters_[static_cast<size_t>(i)].get()
               : nullptr;
  }

  /// Registers a table on the data node (as a Grid Data Service) and in
  /// the catalog.
  Status AddTable(TablePtr table);

  /// Registers a web-service operation usable from queries, with its
  /// nominal per-call cost.
  Status AddWebService(const std::string& name, DataType result_type,
                       double nominal_cost_ms);

  /// Installs a perturbation profile for an operation tag on evaluator i.
  Status PerturbEvaluator(int i, const std::string& tag,
                          PerturbationPtr profile);

  /// Crashes evaluator i: its machine stops executing and the network
  /// drops its traffic. With the failure detector enabled this is ALL it
  /// does — the coordinator finds out through missed heartbeats; without
  /// it, the coordinator is informed directly (legacy oracle).
  Status FailEvaluator(int i);

  /// Crashes the primary coordinator (host 0). Requires a standby: the
  /// kill is silent and recovery happens solely through the standby's
  /// missed-heartbeat takeover (D14).
  Status FailCoordinator();

  /// Null unless options.standby_enabled.
  StandbyCoordinator* standby() { return standby_.get(); }
  GridNode* standby_node() {
    return standby_ != nullptr ? nodes_.back().get() : nullptr;
  }

 private:
  GridOptions options_;
  Simulator sim_;
  std::unique_ptr<ShardedSimulator> ssim_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<MessageBus> bus_;
  Catalog catalog_;
  ResourceRegistry registry_;
  std::vector<std::unique_ptr<GridNode>> nodes_;
  std::vector<std::unique_ptr<Gqes>> gqes_;
  std::unique_ptr<Gdqs> gdqs_;
  std::unique_ptr<HeartbeatMonitor> monitor_;
  std::vector<std::unique_ptr<Heartbeater>> heartbeaters_;
  std::unique_ptr<StandbyCoordinator> standby_;
  /// Beats from the primary's host to the standby's watch monitor.
  std::unique_ptr<Heartbeater> primary_heartbeater_;
  bool initialized_ = false;
};

}  // namespace gqp

#endif  // GRIDQP_WORKLOAD_GRID_SETUP_H_
