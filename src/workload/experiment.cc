#include "workload/experiment.h"

#include "common/logging.h"
#include "common/strings.h"
#include "plan/cost_model.h"
#include "storage/datagen.h"

namespace gqp {

std::string QuerySql(QueryKind kind) {
  switch (kind) {
    case QueryKind::kQ1:
      return "select EntropyAnalyser(p.sequence) from protein_sequences p";
    case QueryKind::kQ2:
      return "select i.orf2 from protein_sequences p, protein_interactions i "
             "where i.orf1 = p.orf";
    case QueryKind::kScanAgg:
      return "select i.orf1, count(*) from protein_interactions i "
             "group by i.orf1";
  }
  return "";
}

std::string QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kQ1:
      return "Q1";
    case QueryKind::kQ2:
      return "Q2";
    case QueryKind::kScanAgg:
      return "SA";
  }
  return "?";
}

std::string PerturbTag(QueryKind kind) {
  switch (kind) {
    case QueryKind::kQ1:
      return CostModel::WsTag("EntropyAnalyser");
    case QueryKind::kQ2:
      return CostModel::JoinTag();
    case QueryKind::kScanAgg:
      return CostModel::AggregateTag();
  }
  return "";
}

namespace {

/// One repetition; returns the response time (or error via result).
Status RunOnce(const ExperimentParams& params, uint64_t seed,
               double* response_ms, size_t* rows,
               QueryStatsSnapshot* stats_out) {
  GridOptions grid_options;
  grid_options.num_evaluators = params.num_evaluators;
  grid_options.adaptive = params.adaptivity;
  grid_options.med.window = params.med_window;
  grid_options.med.thres_m = params.thres_m;
  grid_options.detect.enabled = params.failure_detection;
  grid_options.reliable.enabled = params.failure_detection;
  grid_options.standby_enabled = params.coordinator_standby;
  grid_options.admission.enabled = params.admission_control;

  GridSetup grid(grid_options);
  GQP_RETURN_IF_ERROR(grid.Initialize());

  // Datasets (fresh per repetition, seeded).
  ProteinSequencesSpec seq_spec;
  seq_spec.num_rows = params.sequences;
  seq_spec.sequence_length = params.sequence_length;
  seq_spec.seed = seed;
  GQP_RETURN_IF_ERROR(grid.AddTable(GenerateProteinSequences(seq_spec)));

  ProteinInteractionsSpec inter_spec;
  inter_spec.num_rows = params.interactions;
  inter_spec.num_orfs = params.sequences;
  inter_spec.seed = seed + 1000003;
  GQP_RETURN_IF_ERROR(
      grid.AddTable(GenerateProteinInteractions(inter_spec)));

  GQP_RETURN_IF_ERROR(grid.AddWebService("EntropyAnalyser",
                                         DataType::kDouble,
                                         params.ws_cost_ms));

  // Perturbations: explicit specs first, then background noise for
  // evaluators without one.
  const std::string tag = PerturbTag(params.query);
  std::vector<bool> perturbed(static_cast<size_t>(params.num_evaluators),
                              false);
  for (const PerturbSpec& spec : params.perturbations) {
    if (spec.evaluator < 0 || spec.evaluator >= params.num_evaluators) {
      return Status::OutOfRange(
          StrCat("perturbation targets unknown evaluator ", spec.evaluator));
    }
    perturbed[static_cast<size_t>(spec.evaluator)] = true;
    PerturbationPtr profile;
    switch (spec.kind) {
      case PerturbSpec::Kind::kNone:
        profile = std::make_shared<NoPerturbation>();
        break;
      case PerturbSpec::Kind::kFactor:
        if (params.noise_stddev > 0) {
          profile = std::make_shared<GaussianFactorPerturbation>(
              spec.factor, spec.factor * params.noise_stddev,
              spec.factor * 0.5, spec.factor * 1.5,
              seed + 77 + static_cast<uint64_t>(spec.evaluator));
        } else {
          profile = std::make_shared<ConstantFactorPerturbation>(spec.factor);
        }
        break;
      case PerturbSpec::Kind::kSleep:
        profile = std::make_shared<AddedDelayPerturbation>(spec.sleep_ms);
        break;
      case PerturbSpec::Kind::kGaussianFactor:
        profile = std::make_shared<GaussianFactorPerturbation>(
            spec.mean, spec.stddev, spec.lo, spec.hi,
            seed + 77 + static_cast<uint64_t>(spec.evaluator));
        break;
    }
    GQP_RETURN_IF_ERROR(
        grid.PerturbEvaluator(spec.evaluator, tag, std::move(profile)));
  }
  if (params.drift_sigma > 0) {
    for (int i = 0; i < params.num_evaluators; ++i) {
      if (perturbed[static_cast<size_t>(i)]) continue;
      GQP_RETURN_IF_ERROR(grid.PerturbEvaluator(
          i, tag,
          std::make_shared<DriftPerturbation>(
              params.drift_sigma, params.drift_tau_ms,
              seed + 177 + static_cast<uint64_t>(i))));
    }
  }

  // Query options.
  QueryOptions options;
  options.adaptivity.enabled = params.adaptivity;
  options.adaptivity.assessment = params.assessment;
  options.adaptivity.response = params.response;
  options.adaptivity.thres_a = params.thres_a;
  options.adaptivity.thres_m = params.thres_m;
  options.adaptivity.window = params.med_window;
  options.exec.m1_frequency = params.m1_frequency;
  options.exec.monitoring_enabled = params.adaptivity;
  options.exec.recovery_log_enabled = params.adaptivity;
  options.exec.flow_control_enabled = params.flow_control;
  options.exec.memory_budget_bytes = params.memory_budget_bytes;
  options.optimizer.costs.scan_cost_ms =
      (params.query == QueryKind::kQ2 && params.q2_scan_cost_ms > 0)
          ? params.q2_scan_cost_ms
          : params.scan_cost_ms;
  options.optimizer.costs.join_probe_cost_ms = params.join_probe_cost_ms;
  options.optimizer.costs.join_build_cost_ms = params.join_build_cost_ms;
  options.scheduler.num_evaluators = params.num_evaluators;

  GQP_ASSIGN_OR_RETURN(int query_id,
                       grid.gdqs()->SubmitQuery(QuerySql(params.query),
                                                options));
  GQP_RETURN_IF_ERROR(grid.simulator()->Run());
  if (!grid.gdqs()->QueryComplete(query_id)) {
    GQP_RETURN_IF_ERROR(grid.gdqs()->ExecutionStatus(query_id));
    return Status::Internal(
        StrCat("query did not complete (", params.name,
               "); events executed: ", grid.simulator()->events_executed()));
  }
  GQP_RETURN_IF_ERROR(grid.gdqs()->ExecutionStatus(query_id));

  GQP_ASSIGN_OR_RETURN(QueryResult result,
                       grid.gdqs()->GetResult(query_id));
  GQP_ASSIGN_OR_RETURN(QueryStatsSnapshot stats,
                       grid.gdqs()->CollectStats(query_id));
  *response_ms = result.response_time_ms;
  *rows = result.rows.size();
  *stats_out = stats;
  return Status::OK();
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentParams& params) {
  ExperimentResult result;
  double total = 0.0;
  for (int rep = 0; rep < params.repetitions; ++rep) {
    double response = 0.0;
    size_t rows = 0;
    QueryStatsSnapshot stats;
    const Status s =
        RunOnce(params, params.seed + static_cast<uint64_t>(rep), &response,
                &rows, &stats);
    if (!s.ok()) {
      result.ok = false;
      result.error = s.ToString();
      return result;
    }
    result.rep_times_ms.push_back(response);
    result.result_rows = rows;
    result.stats = stats;
    total += response;
  }
  result.ok = true;
  result.response_ms = total / static_cast<double>(params.repetitions);
  return result;
}

double Normalized(const ExperimentResult& result,
                  const ExperimentResult& baseline) {
  if (!result.ok || !baseline.ok || baseline.response_ms <= 0) return 0.0;
  return result.response_ms / baseline.response_ms;
}

}  // namespace gqp
