#include "catalog/catalog.h"

#include "common/strings.h"

namespace gqp {

Status Catalog::RegisterTable(TableEntry entry) {
  if (entry.name.empty() || entry.schema == nullptr) {
    return Status::InvalidArgument("table entry needs a name and schema");
  }
  const std::string key = ToUpper(entry.name);
  auto [it, inserted] = tables_.emplace(key, std::move(entry));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(StrCat("table already registered: ", key));
  }
  return Status::OK();
}

Status Catalog::RegisterWebService(WebServiceEntry entry) {
  if (entry.name.empty()) {
    return Status::InvalidArgument("web service entry needs a name");
  }
  const std::string key = ToUpper(entry.name);
  auto [it, inserted] = web_services_.emplace(key, std::move(entry));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(
        StrCat("web service already registered: ", key));
  }
  return Status::OK();
}

Result<TableEntry> Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(ToUpper(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("unknown table '", name, "'"));
  }
  return it->second;
}

Result<WebServiceEntry> Catalog::FindWebService(
    const std::string& name) const {
  auto it = web_services_.find(ToUpper(name));
  if (it == web_services_.end()) {
    return Status::NotFound(StrCat("unknown web service '", name, "'"));
  }
  return it->second;
}

bool Catalog::HasWebService(const std::string& name) const {
  return web_services_.count(ToUpper(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, entry] : tables_) names.push_back(entry.name);
  return names;
}

}  // namespace gqp
