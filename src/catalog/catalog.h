// Catalog: metadata the GDQS keeps about data resources (tables exposed as
// Grid Data Services) and computational resources (web-service operations
// usable as typed foreign functions). The optimiser reads cardinality and
// cost statistics from here.

#ifndef GRIDQP_CATALOG_CATALOG_H_
#define GRIDQP_CATALOG_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/message.h"
#include "storage/schema.h"

namespace gqp {

/// Optimiser statistics for a table.
struct TableStats {
  size_t num_rows = 0;
  size_t avg_row_bytes = 0;
};

/// A table exposed by a Grid Data Service on some host.
struct TableEntry {
  std::string name;
  SchemaPtr schema;
  HostId data_host = kInvalidHost;
  TableStats stats;
};

/// A web-service operation callable from queries.
struct WebServiceEntry {
  std::string name;
  /// Result type of the operation.
  DataType result_type = DataType::kDouble;
  /// Nominal per-call cost (ms) used by the optimiser; the actual runtime
  /// cost is whatever the hosting node charges.
  double nominal_cost_ms = 1.0;
};

/// \brief Metadata catalog.
class Catalog {
 public:
  /// Registers a table. Fails on duplicate names (case-insensitive).
  Status RegisterTable(TableEntry entry);

  /// Registers a web-service operation. Fails on duplicates.
  Status RegisterWebService(WebServiceEntry entry);

  Result<TableEntry> FindTable(const std::string& name) const;
  Result<WebServiceEntry> FindWebService(const std::string& name) const;

  bool HasWebService(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, TableEntry> tables_;
  std::unordered_map<std::string, WebServiceEntry> web_services_;
};

}  // namespace gqp

#endif  // GRIDQP_CATALOG_CATALOG_H_
