// Result<T>: value-or-Status, in the style of arrow::Result. Used as the
// return type of fallible functions that produce a value.

#ifndef GRIDQP_COMMON_RESULT_H_
#define GRIDQP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gqp {

/// \brief Holds either a value of type T or an error Status.
///
/// Usage:
/// \code
///   Result<Plan> plan = optimizer.Optimize(query);
///   if (!plan.ok()) return plan.status();
///   Use(plan.value());
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit conversion from an error status. It is a programming error to
  /// construct a Result from an OK status; that is remapped to Internal.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() when a value is held.
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out. Precondition: ok().
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` if this Result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace gqp

// Propagates an error Status from an expression returning Status.
#define GQP_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::gqp::Status _gqp_status = (expr);       \
    if (!_gqp_status.ok()) return _gqp_status; \
  } while (0)

#define GQP_CONCAT_IMPL(x, y) x##y
#define GQP_CONCAT(x, y) GQP_CONCAT_IMPL(x, y)

// Evaluates an expression returning Result<T>; on success assigns the value
// to `lhs`, on error returns the Status from the enclosing function.
#define GQP_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto GQP_CONCAT(_gqp_result_, __LINE__) = (rexpr);                 \
  if (!GQP_CONCAT(_gqp_result_, __LINE__).ok())                      \
    return GQP_CONCAT(_gqp_result_, __LINE__).status();              \
  lhs = std::move(GQP_CONCAT(_gqp_result_, __LINE__)).TakeValue()

#endif  // GRIDQP_COMMON_RESULT_H_
