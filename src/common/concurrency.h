// Process-wide concurrency mode switch for sharded simulation (DESIGN.md
// §D15). The engine is single-threaded by design (D1); the sharded event
// kernel (sim/sharded.h) runs per-shard worker threads, and a handful of
// hot-path structures that are deliberately unsynchronized in sequential
// mode (tuple/value refcounts, the Rep freelist pool) must switch to their
// thread-safe variants while shard workers are live.
//
// The flag is set by the sharded driver BEFORE worker threads start and
// cleared AFTER they join, so the flag itself is never written while it is
// being read concurrently: thread creation/join provide the necessary
// happens-before edges. Sequential runs never set it, keeping their hot
// paths free of atomic read-modify-writes.

#ifndef GRIDQP_COMMON_CONCURRENCY_H_
#define GRIDQP_COMMON_CONCURRENCY_H_

#include <cstdint>

namespace gqp {

namespace internal {
// Plain bool on purpose: transitions only happen on the driver thread
// while no worker threads exist (see file comment).
extern bool g_sharded_run_active;
}  // namespace internal

/// True while a sharded simulation (worker threads) is running. Hot-path
/// structures consult this to pick atomic vs plain refcount operations.
inline bool ShardedRunActive() { return internal::g_sharded_run_active; }

/// Driver-only. Must be called with no shard worker threads alive.
void SetShardedRunActive(bool active);

/// Conditionally-atomic refcount bump: a plain increment in sequential
/// mode (the common case — zero atomic RMW cost), an atomic one while a
/// sharded run is live (tuples/values cross shard boundaries inside
/// message payloads). Returns the new count.
inline uint32_t RefIncrement(uint32_t* refs) {
  if (ShardedRunActive()) {
    return __atomic_add_fetch(refs, 1u, __ATOMIC_RELAXED);
  }
  return ++*refs;
}

/// Conditionally-atomic refcount drop. Acquire/release so the thread that
/// sees zero also sees every write made before the other threads' drops.
inline uint32_t RefDecrement(uint32_t* refs) {
  if (ShardedRunActive()) {
    return __atomic_sub_fetch(refs, 1u, __ATOMIC_ACQ_REL);
  }
  return --*refs;
}

}  // namespace gqp

#endif  // GRIDQP_COMMON_CONCURRENCY_H_
