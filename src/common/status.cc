#include "common/status.h"

namespace gqp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kRejected:
      return "Rejected";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace gqp
