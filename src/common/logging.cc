#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace gqp {
namespace {

struct LoggerState {
  LogLevel level = LogLevel::kWarn;
  Logger::Sink sink;
  std::function<double()> now_ms;
  std::mutex mu;
};

LoggerState& State() {
  static LoggerState state;
  return state;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) { State().level = level; }

LogLevel Logger::level() { return State().level; }

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(State().mu);
  State().sink = std::move(sink);
}

void Logger::SetTimeSource(std::function<double()> now_ms) {
  std::lock_guard<std::mutex> lock(State().mu);
  State().now_ms = std::move(now_ms);
}

void Logger::Log(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(State().mu);
  if (State().sink) {
    State().sink(level, message);
    return;
  }
  if (State().now_ms) {
    std::fprintf(stderr, "[%10.3f ms] [%s] %s\n", State().now_ms(),
                 LevelName(level), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // File/line only on debug-or-lower to keep operational logs tidy.
  if (level <= LogLevel::kDebug) {
    stream_ << file << ":" << line << " ";
  }
}

LogMessage::~LogMessage() { Logger::Log(level_, stream_.str()); }

}  // namespace internal
}  // namespace gqp
