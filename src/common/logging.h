// Minimal leveled logger. Sinks to stderr by default; tests can capture via
// Logger::SetSink. Log lines are prefixed with the virtual time when a
// simulation clock has been registered (see sim/simulator.h).

#ifndef GRIDQP_COMMON_LOGGING_H_
#define GRIDQP_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace gqp {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Process-wide logging configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Minimum level that is emitted. Defaults to kWarn so that tests and
  /// benchmarks stay quiet unless asked.
  static void SetLevel(LogLevel level);
  static LogLevel level();

  /// Replaces the output sink (default: stderr). Pass nullptr to restore.
  static void SetSink(Sink sink);

  /// Optionally supplies a "current virtual time" callback used to prefix
  /// log lines, e.g. from the active simulator.
  static void SetTimeSource(std::function<double()> now_ms);

  static void Log(LogLevel level, const std::string& message);
  static bool Enabled(LogLevel level) { return level >= Logger::level(); }
};

namespace internal {

/// Stream-style single-line log statement builder.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gqp

#define GQP_LOG(level)                                              \
  if (!::gqp::Logger::Enabled(::gqp::LogLevel::level)) {            \
  } else                                                            \
    ::gqp::internal::LogMessage(::gqp::LogLevel::level, __FILE__, __LINE__)

#define GQP_LOG_TRACE GQP_LOG(kTrace)
#define GQP_LOG_DEBUG GQP_LOG(kDebug)
#define GQP_LOG_INFO GQP_LOG(kInfo)
#define GQP_LOG_WARN GQP_LOG(kWarn)
#define GQP_LOG_ERROR GQP_LOG(kError)

#endif  // GRIDQP_COMMON_LOGGING_H_
