#include "common/random.h"

#include <cassert>
#include <cmath>

namespace gqp {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % n;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextTruncatedGaussian(double mean, double stddev, double lo,
                                  double hi) {
  assert(lo <= hi);
  for (int i = 0; i < 64; ++i) {
    const double v = NextGaussian(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  // Degenerate parameters (interval far from the mean): clamp.
  const double v = NextGaussian(mean, stddev);
  return v < lo ? lo : (v > hi ? hi : v);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace gqp
