#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace gqp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace gqp
