#include "common/interner.h"

#include <mutex>
#include <string>
#include <unordered_set>

namespace gqp {

std::string_view InternString(std::string_view s) {
  // Leaky singleton: interned tags must outlive every node work item,
  // including ones that outlive their submitting executor. Mutexed
  // unconditionally: operator construction (deploy events) can run on
  // shard worker threads, and interning is far off the hot path.
  static std::mutex* mu = new std::mutex();
  static auto* interned = new std::unordered_set<std::string, StringHash,
                                                 std::equal_to<>>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = interned->find(s);
  if (it == interned->end()) {
    it = interned->emplace(s).first;
  }
  return std::string_view(*it);
}

}  // namespace gqp
