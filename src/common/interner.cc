#include "common/interner.h"

#include <string>
#include <unordered_set>

namespace gqp {

std::string_view InternString(std::string_view s) {
  // Leaky singleton: interned tags must outlive every node work item,
  // including ones that outlive their submitting executor.
  static auto* interned = new std::unordered_set<std::string, StringHash,
                                                 std::equal_to<>>();
  auto it = interned->find(s);
  if (it == interned->end()) {
    it = interned->emplace(s).first;
  }
  return std::string_view(*it);
}

}  // namespace gqp
