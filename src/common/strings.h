// Small string helpers (GCC 12 lacks std::format, so formatting goes
// through these instead).

#ifndef GRIDQP_COMMON_STRINGS_H_
#define GRIDQP_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gqp {

/// Concatenates streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (void)(os << ... << args);
  return os.str();
}

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator; elements must be streamable.
template <typename Container>
std::string StrJoin(const Container& items, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    os << item;
    first = false;
  }
  return os.str();
}

/// Splits on a single character, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// ASCII case-insensitive equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII.
std::string ToUpper(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

}  // namespace gqp

#endif  // GRIDQP_COMMON_STRINGS_H_
