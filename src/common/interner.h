// Global string interner for hot-path operation tags. Operators charge
// per-tuple costs under a tag; carrying those tags as std::string meant a
// heap allocation per charge. Interning returns a stable string_view whose
// storage lives for the process lifetime, so charge records and node work
// items can hold views without ownership or lifetime hazards.

#ifndef GRIDQP_COMMON_INTERNER_H_
#define GRIDQP_COMMON_INTERNER_H_

#include <string_view>

namespace gqp {

/// Returns a stable, NUL-free view equal to `s`. Repeated calls with equal
/// contents return views into the same storage. The interned set is
/// process-lifetime (tags are a small closed vocabulary: operator tags,
/// "op:exchange", "med:process", web-service names).
std::string_view InternString(std::string_view s);

/// Transparent hash for string-keyed maps that should accept
/// std::string_view lookups without constructing a temporary std::string.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace gqp

#endif  // GRIDQP_COMMON_INTERNER_H_
