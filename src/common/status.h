// Status: lightweight, exception-free error propagation, in the style of
// RocksDB/Arrow. Every fallible operation in GridQP returns a Status (or a
// Result<T>, see result.h) rather than throwing.

#ifndef GRIDQP_COMMON_STATUS_H_
#define GRIDQP_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace gqp {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kAborted = 8,
  kResourceExhausted = 9,
  kParseError = 10,
  /// Admission control refused the query before execution began (D16):
  /// unlike kAborted, no work was ever deployed.
  kRejected = 11,
};

/// Returns a stable human-readable name for a status code ("NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief The result of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (no allocation). Construction of
/// error statuses goes through the named factory functions, e.g.
/// `Status::InvalidArgument("bad weight vector")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsRejected() const { return code_ == StatusCode::kRejected; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace gqp

#endif  // GRIDQP_COMMON_STATUS_H_
