// Deterministic, seedable pseudo-random number generation. All stochastic
// behaviour in GridQP (data generation, per-tuple perturbation noise,
// weighted routing) draws from Rng instances so that experiments are
// reproducible run-to-run.

#ifndef GRIDQP_COMMON_RANDOM_H_
#define GRIDQP_COMMON_RANDOM_H_

#include <cstdint>

namespace gqp {

/// \brief xoshiro256** PRNG with splitmix64 seeding.
///
/// Deliberately not std::mt19937: we want a fixed, documented algorithm so
/// simulated experiments reproduce bit-for-bit across standard libraries.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box–Muller, deterministic).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Normal variate clamped to [lo, hi] (the paper's Fig. 5 perturbation
  /// model: per-tuple cost factors normally distributed with a stable mean,
  /// truncated to an interval).
  double NextTruncatedGaussian(double mean, double stddev, double lo,
                               double hi);

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p);

  /// Derives an independent generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace gqp

#endif  // GRIDQP_COMMON_RANDOM_H_
