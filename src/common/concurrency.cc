#include "common/concurrency.h"

namespace gqp {

namespace internal {
bool g_sharded_run_active = false;
}  // namespace internal

void SetShardedRunActive(bool active) {
  internal::g_sharded_run_active = active;
}

}  // namespace gqp
