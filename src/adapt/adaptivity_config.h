// Adaptivity policy knobs (Section 3.1 of the paper). Defaults are the
// paper's: thresM = thresA = 20%, window = 25 events, M1 every 10 tuples,
// assessment A1, response R2.

#ifndef GRIDQP_ADAPT_ADAPTIVITY_CONFIG_H_
#define GRIDQP_ADAPT_ADAPTIVITY_CONFIG_H_

#include <cstddef>
#include <string>

namespace gqp {

/// How the Diagnoser computes the cost per tuple c(p_i) of a subplan:
/// A1 uses only the subplan's own processing cost (M1); A2 additionally
/// charges the communication cost of delivering its input (M2).
enum class AssessmentType { kA1, kA2 };

/// How the Responder changes the data distribution: R2 (prospective)
/// affects only future tuples; R1 (retrospective) also redistributes the
/// recovery logs (and thereby recreates operator state elsewhere).
enum class ResponseType { kProspective, kRetrospective };

std::string_view AssessmentTypeToString(AssessmentType a);
std::string_view ResponseTypeToString(ResponseType r);

struct AdaptivityConfig {
  bool enabled = true;
  AssessmentType assessment = AssessmentType::kA1;
  ResponseType response = ResponseType::kProspective;
  /// MED notification threshold (relative change of the windowed average).
  double thres_m = 0.20;
  /// Diagnoser trigger threshold (relative change of any weight).
  double thres_a = 0.20;
  /// MED sliding-window length.
  size_t window = 25;
  /// Raw events before a MED group publishes its first digest.
  size_t min_events = 4;
  /// Responder skips adaptation when the average input progress exceeds
  /// this fraction ("execution close to completion").
  double progress_guard = 0.90;
  /// On a QueuePressure event the Diagnoser sheds load from the pressured
  /// instance by scaling its distribution weight with this factor — an
  /// early signal that fires before rate statistics converge.
  double pressure_weight_factor = 0.5;
  /// Minimum virtual time between two pressure-triggered proposals for
  /// the same fragment (keeps a starved-but-draining consumer from
  /// collapsing its own weight to zero).
  double pressure_cooldown_ms = 50.0;
};

}  // namespace gqp

#endif  // GRIDQP_ADAPT_ADAPTIVITY_CONFIG_H_
