#include "adapt/diagnoser.h"

#include <cmath>

#include "common/logging.h"

namespace gqp {

std::string_view AssessmentTypeToString(AssessmentType a) {
  switch (a) {
    case AssessmentType::kA1:
      return "A1";
    case AssessmentType::kA2:
      return "A2";
  }
  return "?";
}

std::string_view ResponseTypeToString(ResponseType r) {
  switch (r) {
    case ResponseType::kProspective:
      return "R2";
    case ResponseType::kRetrospective:
      return "R1";
  }
  return "?";
}

Diagnoser::Diagnoser(MessageBus* bus, HostId host, std::string name,
                     AdaptivityConfig config, int target_fragment,
                     std::vector<SubplanId> instances,
                     std::vector<double> initial_weights)
    : GridService(bus, host, std::move(name)),
      config_(config),
      target_fragment_(target_fragment),
      instances_(std::move(instances)),
      weights_(std::move(initial_weights)),
      processing_cost_(instances_.size(), -1.0),
      comm_cost_(instances_.size(), 0.0),
      dead_(instances_.size(), false) {}

int Diagnoser::InstanceIndex(const SubplanId& id) const {
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i] == id) return static_cast<int>(i);
  }
  return -1;
}

void Diagnoser::HandleMessage(const Message& msg) {
  if (const auto* notice = PayloadAs<FailureNoticePayload>(msg.payload)) {
    const int idx = notice->consumer_index();
    if (idx >= 0 && static_cast<size_t>(idx) < dead_.size()) {
      dead_[static_cast<size_t>(idx)] = true;
    }
    return;
  }
  GQP_LOG_DEBUG << "diagnoser: unexpected direct payload "
                << (msg.payload ? msg.payload->TypeName() : "null");
}

void Diagnoser::OnNotification(const Address& /*publisher*/,
                               const std::string& topic,
                               const PayloadPtr& body) {
  if (topic == kTopicWeightsApplied) {
    const auto* applied = PayloadAs<WeightsAppliedPayload>(body);
    if (applied != nullptr &&
        applied->target_fragment() == target_fragment_ &&
        applied->weights().size() == weights_.size()) {
      weights_ = applied->weights();
    }
    return;
  }
  if (topic != kTopicMonitoringAverages) return;
  if (const auto* pressure = PayloadAs<QueuePressurePayload>(body)) {
    HandlePressure(*pressure);
    return;
  }
  const auto* digest = PayloadAs<MonitoringAveragePayload>(body);
  if (digest == nullptr) return;
  ++stats_.digests_received;

  switch (digest->kind()) {
    case MonitoringAveragePayload::Kind::kProcessingCost: {
      const int idx = InstanceIndex(digest->subplan());
      if (idx < 0) return;  // some other subplan (e.g. a scan fragment)
      processing_cost_[static_cast<size_t>(idx)] = digest->average_ms();
      break;
    }
    case MonitoringAveragePayload::Kind::kCommunicationCost: {
      const int idx = InstanceIndex(digest->recipient());
      if (idx < 0) return;
      const double per_buffer = digest->average_ms();
      const double tuples = digest->avg_tuples_per_buffer();
      comm_cost_[static_cast<size_t>(idx)] =
          tuples > 0 ? per_buffer / tuples : 0.0;
      break;
    }
  }
  Evaluate();
}

void Diagnoser::HandlePressure(const QueuePressurePayload& pressure) {
  ++stats_.pressure_events;
  const int idx = InstanceIndex(pressure.subplan());
  if (idx < 0 || dead_[static_cast<size_t>(idx)]) return;
  const double now = simulator()->Now();
  if (last_pressure_proposal_ms_ >= 0.0 &&
      now - last_pressure_proposal_ms_ < config_.pressure_cooldown_ms) {
    return;
  }

  // Shed load from the starved instance: scale its weight down and
  // renormalize over the live instances. No cost vector is needed — this
  // is exactly the point of the pressure path: it acts before the
  // windowed M1/M2 averages could have converged.
  std::vector<double> proposed = weights_;
  proposed[static_cast<size_t>(idx)] *= config_.pressure_weight_factor;
  double sum = 0.0;
  for (size_t i = 0; i < proposed.size(); ++i) {
    if (dead_[i]) proposed[i] = 0.0;
    sum += proposed[i];
  }
  if (sum <= 0.0) return;
  for (double& w : proposed) w /= sum;

  bool changed = false;
  for (size_t i = 0; i < weights_.size(); ++i) {
    if (std::abs(proposed[i] - weights_[i]) > 1e-9) {
      changed = true;
      break;
    }
  }
  if (!changed) return;  // e.g. a single live instance: nothing to shed to

  last_pressure_proposal_ms_ = now;
  ++stats_.proposals_sent;
  ++stats_.pressure_proposals;
  if (stats_.first_pressure_proposal_ms < 0.0) {
    stats_.first_pressure_proposal_ms = now;
  }
  std::vector<double> costs(instances_.size(), 0.0);
  for (size_t i = 0; i < instances_.size(); ++i) {
    costs[i] = processing_cost_[i] < 0.0 ? 0.0 : processing_cost_[i];
  }
  GQP_LOG_DEBUG << "diagnoser: queue pressure at "
                << pressure.subplan().ToString() << " ("
                << pressure.held_bytes() << "/" << pressure.window_bytes()
                << " bytes) -> shedding load";
  const Status s = Publish(
      kTopicImbalance, std::make_shared<ImbalanceProposalPayload>(
                           target_fragment_, std::move(proposed),
                           std::move(costs)));
  if (!s.ok()) {
    GQP_LOG_WARN << "diagnoser: pressure proposal publish failed: "
                 << s.ToString();
  }
}

void Diagnoser::Evaluate() {
  // Need a cost estimate for every live instance before proposing
  // anything; crashed instances are excluded entirely (weight 0).
  std::vector<double> total(instances_.size(), 0.0);
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (dead_[i]) continue;
    if (processing_cost_[i] < 0.0) return;
    total[i] = processing_cost_[i];
    if (config_.assessment == AssessmentType::kA2) {
      total[i] += comm_cost_[i];
    }
    if (total[i] <= 0.0) total[i] = 1e-9;
  }

  // W' with w'_i inversely proportional to c(p_i).
  double denom = 0.0;
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (!dead_[i]) denom += 1.0 / total[i];
  }
  if (denom <= 0.0) return;
  std::vector<double> proposed(instances_.size(), 0.0);
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (!dead_[i]) proposed[i] = (1.0 / total[i]) / denom;
  }

  // Trigger only when some weight changes by more than thresA (relative).
  bool trigger = false;
  for (size_t i = 0; i < weights_.size(); ++i) {
    const double base = std::max(weights_[i], 1e-9);
    if (std::abs(proposed[i] - weights_[i]) / base > config_.thres_a) {
      trigger = true;
      break;
    }
  }
  if (!trigger) return;

  ++stats_.proposals_sent;
  if (stats_.first_rate_proposal_ms < 0.0) {
    stats_.first_rate_proposal_ms = simulator()->Now();
  }
  const Status s = Publish(
      kTopicImbalance, std::make_shared<ImbalanceProposalPayload>(
                           target_fragment_, proposed, total));
  if (!s.ok()) {
    GQP_LOG_WARN << "diagnoser: proposal publish failed: " << s.ToString();
  }
}

}  // namespace gqp
