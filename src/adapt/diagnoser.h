// Diagnoser: the assessment stage of the adaptivity loop (Fig. 1). One per
// query. Subscribes to MonitoringEventDetector digests; maintains the
// current tuple-distribution vector W and the latest cost per tuple c(p_i)
// of every instance of the monitored partitioned subplan; proposes a
// balanced vector W' with w'_i inversely proportional to c(p_i) whenever
// some weight would change by more than thresA.

#ifndef GRIDQP_ADAPT_DIAGNOSER_H_
#define GRIDQP_ADAPT_DIAGNOSER_H_

#include <unordered_map>
#include <vector>

#include "adapt/adaptivity_config.h"
#include "exec/exchange_messages.h"
#include "monitor/monitoring_events.h"
#include "rpc/service.h"

namespace gqp {

/// Proposal published by the Diagnoser on kTopicImbalance.
class ImbalanceProposalPayload : public Payload {
 public:
  ImbalanceProposalPayload(int target_fragment, std::vector<double> weights,
                           std::vector<double> costs)
      : target_fragment_(target_fragment),
        weights_(std::move(weights)),
        costs_(std::move(costs)) {}

  size_t WireSize() const override {
    return 32 + 16 * weights_.size();
  }
  std::string_view TypeName() const override { return "ImbalanceProposal"; }

  int target_fragment() const { return target_fragment_; }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<double>& costs() const { return costs_; }

 private:
  int target_fragment_;
  std::vector<double> weights_;
  std::vector<double> costs_;
};

struct DiagnoserStats {
  uint64_t digests_received = 0;
  uint64_t proposals_sent = 0;
  /// QueuePressure events received (D11).
  uint64_t pressure_events = 0;
  /// Proposals triggered by pressure (subset of proposals_sent) — the
  /// early path that fires before rate statistics converge.
  uint64_t pressure_proposals = 0;
  /// Virtual time of the first proposal of each kind (<0: none). The
  /// overload tests assert pressure < rate: the early signal must act
  /// before the windowed averages could have.
  double first_pressure_proposal_ms = -1.0;
  double first_rate_proposal_ms = -1.0;
};

/// \brief The Diagnoser grid service.
class Diagnoser : public GridService {
 public:
  /// `instances` are the monitored subplan instances in consumer order;
  /// `initial_weights` is the scheduler's W.
  Diagnoser(MessageBus* bus, HostId host, std::string name,
            AdaptivityConfig config, int target_fragment,
            std::vector<SubplanId> instances,
            std::vector<double> initial_weights);

  const DiagnoserStats& stats() const { return stats_; }
  const std::vector<double>& current_weights() const { return weights_; }

 protected:
  void HandleMessage(const Message& msg) override;
  void OnNotification(const Address& publisher, const std::string& topic,
                      const PayloadPtr& body) override;

 private:
  /// Index of a subplan instance in the consumer order; -1 if unknown.
  int InstanceIndex(const SubplanId& id) const;
  void Evaluate();
  /// Early-signal path (D11): a pressured consumer sheds load by having
  /// its weight scaled down, without waiting for M1 cost averages.
  void HandlePressure(const QueuePressurePayload& pressure);

  AdaptivityConfig config_;
  int target_fragment_;
  std::vector<SubplanId> instances_;
  std::vector<double> weights_;
  /// Latest M1 windowed average per instance (<0: unknown).
  std::vector<double> processing_cost_;
  /// Latest per-tuple communication cost per instance (A2 assessment).
  std::vector<double> comm_cost_;
  /// Instances reported crashed (excluded from balancing).
  std::vector<bool> dead_;
  /// Virtual time of the last pressure-triggered proposal (<0: none).
  /// The cooldown keeps a starved-but-draining consumer from collapsing
  /// its own weight to zero through repeated pressure events.
  double last_pressure_proposal_ms_ = -1.0;
  DiagnoserStats stats_;
};

}  // namespace gqp

#endif  // GRIDQP_ADAPT_DIAGNOSER_H_
