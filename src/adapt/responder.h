// Responder: the response stage of the adaptivity loop (Fig. 1). One per
// query. Receives imbalance proposals from the Diagnoser, estimates the
// progress of execution by contacting the producers (after Chaudhuri et
// al.), and — when worthwhile — orchestrates a redistribution round:
// RedistributeRequest to every producer feeding the monitored fragment,
// outcome collection, then a WeightsApplied announcement so Diagnosers
// update W <- W'.
//
// The Responder is also the serialization point that makes distributed
// completion safe: partitioned consumers offer completion to it, and a
// consumer is only granted leave to finish when no retrospective round is
// in flight; the first offer disables further adaptation for the query.

#ifndef GRIDQP_ADAPT_RESPONDER_H_
#define GRIDQP_ADAPT_RESPONDER_H_

#include <optional>
#include <set>
#include <vector>

#include "adapt/adaptivity_config.h"
#include "adapt/diagnoser.h"
#include "exec/exchange_messages.h"
#include "exec/exchange_producer.h"
#include "rpc/service.h"

namespace gqp {

struct ResponderStats {
  uint64_t proposals_received = 0;
  uint64_t rounds_started = 0;
  uint64_t rounds_applied = 0;
  uint64_t rounds_rejected = 0;
  uint64_t skipped_progress = 0;
  uint64_t skipped_disabled = 0;
  uint64_t completion_grants = 0;
  uint64_t failures_handled = 0;
};

/// \brief The Responder grid service.
class Responder : public GridService {
 public:
  /// `producers` are the fragment instances feeding the monitored
  /// fragment (the data-delivering evaluators the paper's Responder
  /// contacts).
  /// `initial_weights` is the scheduler's W over the monitored fragment's
  /// instances (used to derive recovery weights when an instance fails).
  Responder(MessageBus* bus, HostId host, std::string name,
            AdaptivityConfig config, int target_fragment,
            std::vector<ConsumerEndpoint> producers,
            std::vector<double> initial_weights = {});

  const ResponderStats& stats() const { return stats_; }
  bool adaptation_enabled() const { return adaptation_enabled_; }
  const std::vector<double>& current_weights() const { return weights_; }

 protected:
  void HandleMessage(const Message& msg) override;
  void OnNotification(const Address& publisher, const std::string& topic,
                      const PayloadPtr& body) override;

 private:
  struct Round {
    uint64_t id = 0;
    std::vector<double> weights;
    /// Crashed consumer indexes carried by this (recovery) round.
    std::vector<int> dead;
    /// Recovery rounds skip the progress-estimation guard: they are about
    /// correctness, not performance.
    bool recovery = false;
    /// Producers whose progress reply / outcome is outstanding.
    std::set<std::string> awaiting_progress;
    std::set<std::string> awaiting_outcome;
    double progress_sum = 0.0;
    int progress_replies = 0;
    bool any_applied = false;
    bool redistribute_sent = false;
  };

  void MaybeStartRound();
  void OnFailureNotice(const FailureNoticePayload& notice);
  void OnProgressReply(const ProgressReplyPayload& reply);
  void OnOutcome(const RedistributeOutcomePayload& outcome);
  void FinishRound();
  void GrantPendingCompletions();

  AdaptivityConfig config_;
  int target_fragment_;
  std::vector<ConsumerEndpoint> producers_;

  std::optional<std::vector<double>> pending_proposal_;
  std::optional<Round> round_;
  uint64_t next_round_id_ = 1;
  bool adaptation_enabled_ = true;
  /// Effective distribution vector (W), updated as rounds apply.
  std::vector<double> weights_;
  /// Crashed consumer indexes, by consumer index of the monitored
  /// fragment.
  std::set<int> dead_consumers_;
  /// Failure awaiting a free round slot.
  std::vector<int> pending_failures_;
  /// Consumers waiting for a completion grant.
  std::vector<Address> pending_completions_;
  ResponderStats stats_;
};

}  // namespace gqp

#endif  // GRIDQP_ADAPT_RESPONDER_H_
