#include "adapt/responder.h"

#include "common/logging.h"
#include "plan/scheduler.h"

namespace gqp {

Responder::Responder(MessageBus* bus, HostId host, std::string name,
                     AdaptivityConfig config, int target_fragment,
                     std::vector<ConsumerEndpoint> producers,
                     std::vector<double> initial_weights)
    : GridService(bus, host, std::move(name)),
      config_(config),
      target_fragment_(target_fragment),
      producers_(std::move(producers)),
      weights_(std::move(initial_weights)) {}

void Responder::OnNotification(const Address& /*publisher*/,
                               const std::string& topic,
                               const PayloadPtr& body) {
  if (topic != kTopicImbalance) return;
  const auto* proposal = PayloadAs<ImbalanceProposalPayload>(body);
  if (proposal == nullptr || proposal->target_fragment() != target_fragment_) {
    return;
  }
  ++stats_.proposals_received;
  if (!adaptation_enabled_) {
    ++stats_.skipped_disabled;
    return;
  }
  // Keep only the newest proposal; rounds are serialized.
  pending_proposal_ = proposal->weights();
  MaybeStartRound();
}

void Responder::HandleMessage(const Message& msg) {
  if (const auto* reply = PayloadAs<ProgressReplyPayload>(msg.payload)) {
    OnProgressReply(*reply);
    return;
  }
  if (const auto* outcome =
          PayloadAs<RedistributeOutcomePayload>(msg.payload)) {
    OnOutcome(*outcome);
    return;
  }
  if (const auto* notice = PayloadAs<FailureNoticePayload>(msg.payload)) {
    OnFailureNotice(*notice);
    return;
  }
  if (const auto* offer = PayloadAs<CompletionOfferPayload>(msg.payload)) {
    (void)offer;
    // Execution is ending: stop initiating adaptations (the paper's
    // "close to completion" guard, made safe for the completion protocol).
    adaptation_enabled_ = false;
    pending_proposal_.reset();
    pending_completions_.push_back(msg.from);
    if (!round_.has_value()) GrantPendingCompletions();
    return;
  }
  GQP_LOG_DEBUG << "responder: unhandled payload "
                << (msg.payload ? msg.payload->TypeName() : "null");
}

void Responder::OnFailureNotice(const FailureNoticePayload& notice) {
  if (notice.consumer_index() < 0 ||
      dead_consumers_.count(notice.consumer_index()) > 0) {
    return;
  }
  ++stats_.failures_handled;
  dead_consumers_.insert(notice.consumer_index());
  pending_failures_.push_back(notice.consumer_index());
  MaybeStartRound();
}

void Responder::MaybeStartRound() {
  if (round_.has_value()) return;

  // Failure recovery takes priority and runs even after completion offers
  // disabled performance adaptation: it is a correctness action.
  if (!pending_failures_.empty() && !weights_.empty()) {
    Round round;
    round.id = next_round_id_++;
    round.recovery = true;
    round.dead.assign(dead_consumers_.begin(), dead_consumers_.end());
    pending_failures_.clear();
    // Redistribute the dead machines' shares over the survivors.
    round.weights = RecoveryWeights(weights_, dead_consumers_);
    if (round.weights.empty()) {
      GQP_LOG_ERROR << "responder: every evaluator failed; cannot recover";
      round_.reset();
      return;
    }
    ++stats_.rounds_started;
    round.redistribute_sent = true;
    for (const ConsumerEndpoint& producer : producers_) {
      round.awaiting_outcome.insert(producer.id.ToString());
    }
    auto request = std::make_shared<RedistributeRequestPayload>(
        round.id, target_fragment_, round.weights, /*retrospective=*/true,
        round.dead);
    for (const ConsumerEndpoint& producer : producers_) {
      const Status s = SendTo(producer.address, request);
      if (!s.ok()) {
        GQP_LOG_WARN << "responder: recovery request failed: "
                     << s.ToString();
      }
    }
    round_ = std::move(round);
    return;
  }

  if (!pending_proposal_.has_value() || !adaptation_enabled_) {
    return;
  }
  Round round;
  round.id = next_round_id_++;
  round.weights = std::move(*pending_proposal_);
  // Dead machines stay excluded from performance rebalancing.
  if (!dead_consumers_.empty()) {
    round.weights = RecoveryWeights(std::move(round.weights), dead_consumers_);
    if (round.weights.empty()) return;
    round.dead.assign(dead_consumers_.begin(), dead_consumers_.end());
  }
  pending_proposal_.reset();
  ++stats_.rounds_started;

  // Phase 1: estimate progress by contacting all data-producing
  // evaluators.
  for (const ConsumerEndpoint& producer : producers_) {
    round.awaiting_progress.insert(producer.id.ToString());
    const Status s = SendTo(producer.address,
                            std::make_shared<ProgressRequestPayload>(round.id));
    if (!s.ok()) {
      GQP_LOG_WARN << "responder: progress request failed: " << s.ToString();
    }
  }
  round_ = std::move(round);
  if (round_->awaiting_progress.empty()) {
    // No producers to ask (degenerate plan); just finish.
    FinishRound();
  }
}

void Responder::OnProgressReply(const ProgressReplyPayload& reply) {
  if (!round_.has_value() || reply.round() != round_->id ||
      round_->redistribute_sent) {
    return;
  }
  const std::string key = reply.producer().ToString();
  if (round_->awaiting_progress.erase(key) == 0) return;
  round_->progress_sum += reply.fraction();
  ++round_->progress_replies;
  if (!round_->awaiting_progress.empty()) return;

  // Phase 2: decide.
  const double avg_progress =
      round_->progress_replies > 0
          ? round_->progress_sum / round_->progress_replies
          : 1.0;
  const bool retrospective =
      config_.response == ResponseType::kRetrospective;
  if (avg_progress >= config_.progress_guard && !retrospective) {
    // Too late for a prospective change to pay off.
    ++stats_.skipped_progress;
    FinishRound();
    return;
  }

  round_->redistribute_sent = true;
  for (const ConsumerEndpoint& producer : producers_) {
    round_->awaiting_outcome.insert(producer.id.ToString());
  }
  auto request = std::make_shared<RedistributeRequestPayload>(
      round_->id, target_fragment_, round_->weights, retrospective,
      round_->dead);
  for (const ConsumerEndpoint& producer : producers_) {
    const Status s = SendTo(producer.address, request);
    if (!s.ok()) {
      GQP_LOG_WARN << "responder: redistribute request failed: "
                   << s.ToString();
    }
  }
}

void Responder::OnOutcome(const RedistributeOutcomePayload& outcome) {
  if (!round_.has_value() || outcome.round() != round_->id) return;
  const std::string key = outcome.producer().ToString();
  if (round_->awaiting_outcome.erase(key) == 0) return;
  round_->any_applied = round_->any_applied || outcome.applied();
  if (round_->awaiting_outcome.empty()) FinishRound();
}

void Responder::FinishRound() {
  if (!round_.has_value()) return;
  const bool applied = round_->any_applied;
  const std::vector<double> weights = std::move(round_->weights);
  const uint64_t id = round_->id;
  round_.reset();

  if (applied) {
    ++stats_.rounds_applied;
    weights_ = weights;
    // W <- W' at the Diagnoser(s).
    const Status s =
        Publish(kTopicWeightsApplied,
                std::make_shared<WeightsAppliedPayload>(
                    id, target_fragment_, weights));
    if (!s.ok()) {
      GQP_LOG_WARN << "responder: weights-applied publish failed: "
                   << s.ToString();
    }
  } else {
    ++stats_.rounds_rejected;
  }

  GrantPendingCompletions();
  MaybeStartRound();
}

void Responder::GrantPendingCompletions() {
  if (round_.has_value()) return;
  for (const Address& consumer : pending_completions_) {
    ++stats_.completion_grants;
    const Status s = SendTo(
        consumer, std::make_shared<CompletionGrantPayload>(SubplanId{}));
    if (!s.ok()) {
      GQP_LOG_WARN << "responder: completion grant failed: " << s.ToString();
    }
  }
  pending_completions_.clear();
}

}  // namespace gqp
