#include "sql/ast.h"

#include "common/strings.h"

namespace gqp {
namespace {

const char* AstBinaryOpName(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kEq:
      return "=";
    case AstBinaryOp::kNe:
      return "<>";
    case AstBinaryOp::kLt:
      return "<";
    case AstBinaryOp::kLe:
      return "<=";
    case AstBinaryOp::kGt:
      return ">";
    case AstBinaryOp::kGe:
      return ">=";
    case AstBinaryOp::kAnd:
      return "AND";
    case AstBinaryOp::kOr:
      return "OR";
    case AstBinaryOp::kAdd:
      return "+";
    case AstBinaryOp::kSub:
      return "-";
    case AstBinaryOp::kMul:
      return "*";
    case AstBinaryOp::kDiv:
      return "/";
  }
  return "?";
}

}  // namespace

std::string AstCall::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const auto& a : args_) parts.push_back(a->ToString());
  return StrCat(name_, "(", StrJoin(parts, ", "), ")");
}

std::string AstBinary::ToString() const {
  return StrCat("(", left_->ToString(), " ", AstBinaryOpName(op_), " ",
                right_->ToString(), ")");
}

std::string SelectQuery::ToString() const {
  std::vector<std::string> item_strs;
  item_strs.reserve(items.size());
  for (const auto& item : items) {
    std::string s = item.expr->ToString();
    if (!item.alias.empty()) s += " AS " + item.alias;
    item_strs.push_back(std::move(s));
  }
  std::vector<std::string> table_strs;
  table_strs.reserve(tables.size());
  for (const auto& t : tables) {
    std::string s = t.table;
    if (!t.alias.empty()) s += " " + t.alias;
    table_strs.push_back(std::move(s));
  }
  std::string out = StrCat("SELECT ", StrJoin(item_strs, ", "), " FROM ",
                           StrJoin(table_strs, ", "));
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    std::vector<std::string> group_strs;
    group_strs.reserve(group_by.size());
    for (const auto& g : group_by) group_strs.push_back(g->ToString());
    out += " GROUP BY " + StrJoin(group_strs, ", ");
  }
  return out;
}

}  // namespace gqp
