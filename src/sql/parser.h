// Recursive-descent parser for the GridQP SELECT subset:
//
//   query      := SELECT select_list FROM table_refs [WHERE expr] [;]
//   select_list:= '*' | item (',' item)*
//   item       := expr [AS ident | ident]
//   table_refs := table_ref (',' table_ref)*
//   table_ref  := ident [ident]
//   expr       := or_expr with standard precedence
//                 (OR < AND < NOT < comparison < +- < */ < unary < primary)
//   primary    := literal | NULL | ident['.'ident] | ident '(' args ')' |
//                 '(' expr ')'
//
// This covers the paper's Q1 and Q2 and typical variants.

#ifndef GRIDQP_SQL_PARSER_H_
#define GRIDQP_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace gqp {

/// Parses a single SELECT statement. Returns ParseError with a position
/// hint on malformed input.
Result<SelectQuery> ParseSelect(const std::string& sql);

}  // namespace gqp

#endif  // GRIDQP_SQL_PARSER_H_
