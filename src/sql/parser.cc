#include "sql/parser.h"

#include "common/strings.h"
#include "sql/lexer.h"

namespace gqp {
namespace {

/// Parser state over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> ParseQuery();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(std::string_view symbol_or_keyword);

  Status Error(const std::string& what) const {
    return Status::ParseError(StrCat(what, " near position ",
                                     Peek().position, " (got '", Peek().text,
                                     "')"));
  }

  Result<SelectItem> ParseSelectItem();
  Result<TableRef> ParseTableRef();

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }
  Result<AstExprPtr> ParseOr();
  Result<AstExprPtr> ParseAnd();
  Result<AstExprPtr> ParseNot();
  Result<AstExprPtr> ParseComparison();
  Result<AstExprPtr> ParseAdditive();
  Result<AstExprPtr> ParseMultiplicative();
  Result<AstExprPtr> ParseUnary();
  Result<AstExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

bool Parser::Match(std::string_view symbol_or_keyword) {
  const Token& t = Peek();
  if (t.IsSymbol(symbol_or_keyword) || t.IsKeyword(symbol_or_keyword)) {
    ++pos_;
    return true;
  }
  return false;
}

Result<SelectQuery> Parser::ParseQuery() {
  if (!Match("SELECT")) return Error("expected SELECT");
  SelectQuery query;

  if (Match("*")) {
    query.items.push_back(SelectItem{std::make_shared<AstStar>(), ""});
  } else {
    do {
      GQP_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      query.items.push_back(std::move(item));
    } while (Match(","));
  }

  if (!Match("FROM")) return Error("expected FROM");
  do {
    GQP_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    query.tables.push_back(std::move(ref));
  } while (Match(","));

  if (Match("WHERE")) {
    GQP_ASSIGN_OR_RETURN(query.where, ParseExpr());
  }
  if (Match("GROUP")) {
    if (!Match("BY")) return Error("expected BY after GROUP");
    do {
      GQP_ASSIGN_OR_RETURN(AstExprPtr expr, ParseExpr());
      query.group_by.push_back(std::move(expr));
    } while (Match(","));
  }
  Match(";");
  if (Peek().type != TokenType::kEnd) return Error("trailing input");
  return query;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  GQP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (Match("AS")) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected alias after AS");
    }
    item.alias = Advance().text;
  } else if (Peek().type == TokenType::kIdentifier) {
    item.alias = Advance().text;
  }
  return item;
}

Result<TableRef> Parser::ParseTableRef() {
  if (Peek().type != TokenType::kIdentifier) {
    return Error("expected table name");
  }
  TableRef ref;
  ref.table = Advance().text;
  if (Peek().type == TokenType::kIdentifier) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<AstExprPtr> Parser::ParseOr() {
  GQP_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
  while (Match("OR")) {
    GQP_ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
    left = std::make_shared<AstBinary>(AstBinaryOp::kOr, left, right);
  }
  return left;
}

Result<AstExprPtr> Parser::ParseAnd() {
  GQP_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
  while (Match("AND")) {
    GQP_ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
    left = std::make_shared<AstBinary>(AstBinaryOp::kAnd, left, right);
  }
  return left;
}

Result<AstExprPtr> Parser::ParseNot() {
  if (Match("NOT")) {
    GQP_ASSIGN_OR_RETURN(AstExprPtr operand, ParseNot());
    return AstExprPtr(std::make_shared<AstUnaryNot>(std::move(operand)));
  }
  return ParseComparison();
}

Result<AstExprPtr> Parser::ParseComparison() {
  GQP_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());
  struct OpMap {
    std::string_view sym;
    AstBinaryOp op;
  };
  static constexpr OpMap kOps[] = {
      {"=", AstBinaryOp::kEq},  {"<>", AstBinaryOp::kNe},
      {"!=", AstBinaryOp::kNe}, {"<=", AstBinaryOp::kLe},
      {">=", AstBinaryOp::kGe}, {"<", AstBinaryOp::kLt},
      {">", AstBinaryOp::kGt},
  };
  for (const OpMap& m : kOps) {
    if (Peek().IsSymbol(m.sym)) {
      Advance();
      GQP_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
      return AstExprPtr(std::make_shared<AstBinary>(m.op, left, right));
    }
  }
  return left;
}

Result<AstExprPtr> Parser::ParseAdditive() {
  GQP_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
  while (true) {
    AstBinaryOp op;
    if (Peek().IsSymbol("+")) {
      op = AstBinaryOp::kAdd;
    } else if (Peek().IsSymbol("-")) {
      op = AstBinaryOp::kSub;
    } else {
      return left;
    }
    Advance();
    GQP_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
    left = std::make_shared<AstBinary>(op, left, right);
  }
}

Result<AstExprPtr> Parser::ParseMultiplicative() {
  GQP_ASSIGN_OR_RETURN(AstExprPtr left, ParseUnary());
  while (true) {
    AstBinaryOp op;
    if (Peek().IsSymbol("*")) {
      op = AstBinaryOp::kMul;
    } else if (Peek().IsSymbol("/")) {
      op = AstBinaryOp::kDiv;
    } else {
      return left;
    }
    Advance();
    GQP_ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
    left = std::make_shared<AstBinary>(op, left, right);
  }
}

Result<AstExprPtr> Parser::ParseUnary() {
  if (Match("-")) {
    GQP_ASSIGN_OR_RETURN(AstExprPtr operand, ParseUnary());
    return AstExprPtr(std::make_shared<AstBinary>(
        AstBinaryOp::kSub,
        std::make_shared<AstLiteral>(Value(static_cast<int64_t>(0))),
        std::move(operand)));
  }
  return ParsePrimary();
}

Result<AstExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  if (t.type == TokenType::kNumber) {
    Advance();
    if (t.text.find('.') != std::string::npos) {
      return AstExprPtr(std::make_shared<AstLiteral>(
          Value(std::stod(t.text))));
    }
    return AstExprPtr(std::make_shared<AstLiteral>(
        Value(static_cast<int64_t>(std::stoll(t.text)))));
  }
  if (t.type == TokenType::kString) {
    Advance();
    return AstExprPtr(std::make_shared<AstLiteral>(Value(t.text)));
  }
  if (t.IsKeyword("NULL")) {
    Advance();
    return AstExprPtr(std::make_shared<AstLiteral>(Value::Null()));
  }
  if (Match("(")) {
    GQP_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
    if (!Match(")")) return Error("expected ')'");
    return inner;
  }
  if (t.type == TokenType::kIdentifier) {
    const std::string first = Advance().text;
    if (Match("(")) {  // function call
      std::vector<AstExprPtr> args;
      if (Peek().IsSymbol("*")) {  // aggregate star: COUNT(*)
        Advance();
        args.push_back(std::make_shared<AstStar>());
      } else if (!Peek().IsSymbol(")")) {
        do {
          GQP_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (Match(","));
      }
      if (!Match(")")) return Error("expected ')' after arguments");
      return AstExprPtr(
          std::make_shared<AstCall>(first, std::move(args)));
    }
    if (Match(".")) {  // qualified column
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column name after '.'");
      }
      const std::string col = Advance().text;
      return AstExprPtr(std::make_shared<AstColumn>(first, col));
    }
    return AstExprPtr(std::make_shared<AstColumn>("", first));
  }
  return Error("expected expression");
}

}  // namespace

Result<SelectQuery> ParseSelect(const std::string& sql) {
  GQP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace gqp
