#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace gqp {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kw = new std::unordered_set<std::string>{
      "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "AS", "NULL",
      "GROUP", "BY",
  };
  return *kw;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kKeyword && text == kw;
}

bool Token::IsSymbol(std::string_view sym) const {
  return type == TokenType::kSymbol && text == sym;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word = sql.substr(start, i - start);
      const std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      const size_t start = i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (sql[i] == '.' && !seen_dot))) {
        if (sql[i] == '.') seen_dot = true;
        ++i;
      }
      tokens.push_back({TokenType::kNumber, sql.substr(start, i - start),
                        start});
      continue;
    }
    if (c == '\'') {
      const size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrCat("unterminated string literal at position ", start));
      }
      tokens.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < n) {
      const std::string two = sql.substr(i, 2);
      if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
        tokens.push_back({TokenType::kSymbol, two, i});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = ",().*=<>+-/;";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), i});
      ++i;
      continue;
    }
    return Status::ParseError(
        StrCat("unexpected character '", std::string(1, c), "' at position ",
               i));
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace gqp
