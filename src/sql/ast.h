// Abstract syntax tree produced by the SQL parser. Names are unresolved
// here; the planner binds them against the catalog.

#ifndef GRIDQP_SQL_AST_H_
#define GRIDQP_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace gqp {

class AstExpr;
using AstExprPtr = std::shared_ptr<const AstExpr>;

enum class AstExprKind {
  kColumn,
  kLiteral,
  kCall,
  kBinary,
  kUnaryNot,
  kStar,
};

/// Binary operators at the AST level (comparisons, connectives,
/// arithmetic).
enum class AstBinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv,
};

/// \brief A parsed (unresolved) expression.
class AstExpr {
 public:
  explicit AstExpr(AstExprKind kind) : kind_(kind) {}
  virtual ~AstExpr() = default;

  AstExprKind kind() const { return kind_; }
  virtual std::string ToString() const = 0;

 private:
  AstExprKind kind_;
};

/// `alias.column` or bare `column` reference.
class AstColumn : public AstExpr {
 public:
  AstColumn(std::string qualifier, std::string name)
      : AstExpr(AstExprKind::kColumn),
        qualifier_(std::move(qualifier)),
        name_(std::move(name)) {}

  const std::string& qualifier() const { return qualifier_; }
  const std::string& name() const { return name_; }
  std::string ToString() const override {
    return qualifier_.empty() ? name_ : qualifier_ + "." + name_;
  }

 private:
  std::string qualifier_;  // may be empty
  std::string name_;
};

/// Constant literal.
class AstLiteral : public AstExpr {
 public:
  explicit AstLiteral(Value value)
      : AstExpr(AstExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// Function (or web-service operation) invocation.
class AstCall : public AstExpr {
 public:
  AstCall(std::string name, std::vector<AstExprPtr> args)
      : AstExpr(AstExprKind::kCall),
        name_(std::move(name)),
        args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<AstExprPtr>& args() const { return args_; }
  std::string ToString() const override;

 private:
  std::string name_;
  std::vector<AstExprPtr> args_;
};

/// Binary expression.
class AstBinary : public AstExpr {
 public:
  AstBinary(AstBinaryOp op, AstExprPtr left, AstExprPtr right)
      : AstExpr(AstExprKind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  AstBinaryOp op() const { return op_; }
  const AstExprPtr& left() const { return left_; }
  const AstExprPtr& right() const { return right_; }
  std::string ToString() const override;

 private:
  AstBinaryOp op_;
  AstExprPtr left_;
  AstExprPtr right_;
};

/// NOT expr.
class AstUnaryNot : public AstExpr {
 public:
  explicit AstUnaryNot(AstExprPtr operand)
      : AstExpr(AstExprKind::kUnaryNot), operand_(std::move(operand)) {}

  const AstExprPtr& operand() const { return operand_; }
  std::string ToString() const override {
    return "NOT " + operand_->ToString();
  }

 private:
  AstExprPtr operand_;
};

/// `*` in a select list.
class AstStar : public AstExpr {
 public:
  AstStar() : AstExpr(AstExprKind::kStar) {}
  std::string ToString() const override { return "*"; }
};

/// One item of the select list.
struct SelectItem {
  AstExprPtr expr;
  std::string alias;  // optional
};

/// A FROM-clause table with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name

  const std::string& effective_alias() const {
    return alias.empty() ? table : alias;
  }
};

/// A parsed SELECT query.
struct SelectQuery {
  std::vector<SelectItem> items;
  std::vector<TableRef> tables;
  AstExprPtr where;  // may be null
  /// GROUP BY expressions (empty when not grouping).
  std::vector<AstExprPtr> group_by;

  std::string ToString() const;
};

}  // namespace gqp

#endif  // GRIDQP_SQL_AST_H_
