// SQL lexer for the SELECT subset GridQP supports (enough to express the
// paper's Q1/Q2 and similar queries).

#ifndef GRIDQP_SQL_LEXER_H_
#define GRIDQP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace gqp {

enum class TokenType {
  kIdentifier,
  kKeyword,
  kNumber,
  kString,
  kSymbol,  // punctuation and operators
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keywords uppercased; identifiers as written
  size_t position = 0;

  bool IsKeyword(std::string_view kw) const;
  bool IsSymbol(std::string_view sym) const;
};

/// Tokenizes `sql`. Returns ParseError with position info on bad input.
/// The final token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace gqp

#endif  // GRIDQP_SQL_LEXER_H_
