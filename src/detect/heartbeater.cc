#include "detect/heartbeater.h"

#include <memory>
#include <utility>

namespace gqp {

Heartbeater::Heartbeater(MessageBus* bus, GridNode* node, Address monitor)
    : GridService(bus, node->id(), "hb"),
      node_(node),
      monitor_(std::move(monitor)) {}

void Heartbeater::HandleMessage(const Message& msg) {
  const auto* ctrl = PayloadAs<HeartbeatControlPayload>(msg.payload);
  if (ctrl == nullptr) return;
  if (ctrl->start()) {
    epoch_ = ctrl->epoch();
    interval_ms_ = ctrl->interval_ms();
    seq_ = 0;
    active_ = true;
    if (!tick_scheduled_) Tick();
  } else if (ctrl->epoch() >= epoch_) {
    // Epochs are monotone, so a stop stamped with a NEWER epoch is also
    // authoritative: the standby coordinator stops heartbeaters with the
    // watch epoch it mirrored, which can run ahead of what this beater
    // saw if the primary died mid-activation (D14). A stop from an older
    // epoch stays ignored (a fresh start already superseded it).
    active_ = false;  // the pending tick (if any) sees this and stops
  }
}

void Heartbeater::Tick() {
  tick_scheduled_ = false;
  // Not rescheduling is what drains the simulation once queries finish
  // (DESIGN.md §6's "runs to quiescence" property).
  if (!active_ || node_->dead()) return;
  if (simulator()->Now() < stall_until_) {
    ++beats_suppressed_;  // alive but silent: the false-suspicion trigger
  } else {
    ++seq_;
    ++beats_sent_;
    // Best-effort on purpose: a lost beat is information, not an error.
    (void)bus()->SendBestEffort(
        address(), monitor_,
        std::make_shared<HeartbeatPayload>(host(), seq_, epoch_));
  }
  tick_scheduled_ = true;
  simulator()->Schedule(interval_ms_, [this] { Tick(); });
}

}  // namespace gqp
