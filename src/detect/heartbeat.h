// Heartbeat failure detection (DESIGN.md §D8): every GQES host runs a
// Heartbeater that periodically beats the coordinator's HeartbeatMonitor
// over the simulated (lossy) network. The monitor runs a φ-style adaptive
// suspicion estimator per watched host and drives the
// suspect → confirm → recover state machine that replaces the old
// direct-call failure oracle.
//
// Heartbeats are deliberately best-effort (MessageBus::SendBestEffort):
// their loss is the very signal the detector estimates. Control messages
// that must arrive (the start/stop commands carrying the epoch) ride the
// reliable transport instead.

#ifndef GRIDQP_DETECT_HEARTBEAT_H_
#define GRIDQP_DETECT_HEARTBEAT_H_

#include <cstdint>

#include "net/message.h"

namespace gqp {

/// Knobs of the failure detector.
struct DetectConfig {
  /// Off by default: legacy setups keep the direct-call oracle and
  /// byte-identical schedules.
  bool enabled = false;
  /// Interval between beats from each evaluator.
  double heartbeat_interval_ms = 5.0;
  /// Suspicion threshold in standard deviations over the observed
  /// inter-arrival mean (the φ-accrual analogue: suspect when silence
  /// exceeds mean + phi_k * sd).
  double phi_k = 3.0;
  /// Clamp on the adaptive timeout, in heartbeat intervals. The lower
  /// bound prevents false suspicion from an unluckily tight estimate; the
  /// upper bound caps detection latency no matter how noisy the link.
  double min_suspect_intervals = 3.0;
  double max_suspect_intervals = 6.0;
  /// Extra silence (in intervals) after suspicion before the failure is
  /// confirmed to the GDQS. A beat arriving in this window clears the
  /// suspicion with no recovery cost.
  double confirm_intervals = 3.0;
  /// Permits confirming the last unconfirmed watched host. Evaluator
  /// watches keep this off (the last-survivor guard: recovery needs a
  /// live target); the standby's primary watch turns it on — it watches
  /// exactly one host and confirming it IS the takeover trigger (D14).
  bool allow_last_survivor_confirm = false;

  /// Worst-case confirmed-detection latency after a crash: the adaptive
  /// timeout is capped at max_suspect_intervals, confirmation adds
  /// confirm_intervals, and the check timer (interval/2 period) can add
  /// at most one interval of scan slack; one more interval absorbs the
  /// in-flight beat that was sent just before the crash.
  double MaxDetectionLatencyMs() const {
    return heartbeat_interval_ms *
           (max_suspect_intervals + confirm_intervals + 2.0);
  }
};

/// Detector counters (chaos diagnostics and tests).
struct DetectStats {
  uint64_t heartbeats_received = 0;
  /// Beats from a previous watch epoch, ignored.
  uint64_t stale_heartbeats = 0;
  uint64_t suspicions_raised = 0;
  /// Suspicions cleared by a beat before confirmation (false suspicion).
  uint64_t suspicions_cleared = 0;
  uint64_t failures_confirmed = 0;
  /// Confirmed-then-heard-from hosts re-admitted as fresh capacity.
  uint64_t readmissions = 0;
  /// Confirmations withheld by the last-survivor guard.
  uint64_t confirms_suppressed = 0;
};

/// One beat: the sender's host, a per-epoch sequence number, and the watch
/// epoch it belongs to (beats from a stale epoch are ignored).
class HeartbeatPayload : public Payload {
 public:
  HeartbeatPayload(HostId host, uint64_t seq, uint64_t epoch)
      : host_(host), seq_(seq), epoch_(epoch) {}

  size_t WireSize() const override { return 24; }
  std::string_view TypeName() const override { return "Heartbeat"; }

  HostId host() const { return host_; }
  uint64_t seq() const { return seq_; }
  uint64_t epoch() const { return epoch_; }

 private:
  HostId host_;
  uint64_t seq_;
  uint64_t epoch_;
};

/// Monitor -> heartbeater command: start (or stop) beating at the given
/// interval, stamped with the current watch epoch. Sent reliably.
class HeartbeatControlPayload : public Payload {
 public:
  HeartbeatControlPayload(bool start, uint64_t epoch, double interval_ms)
      : start_(start), epoch_(epoch), interval_ms_(interval_ms) {}

  size_t WireSize() const override { return 17; }
  std::string_view TypeName() const override { return "HeartbeatControl"; }

  bool start() const { return start_; }
  uint64_t epoch() const { return epoch_; }
  double interval_ms() const { return interval_ms_; }

 private:
  bool start_;
  uint64_t epoch_;
  double interval_ms_;
};

}  // namespace gqp

#endif  // GRIDQP_DETECT_HEARTBEAT_H_
