#include "detect/monitor.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "grid/node.h"

namespace gqp {
namespace {

/// EWMA weight for the inter-arrival estimator. Light enough to smooth
/// per-beat jitter, heavy enough to adapt within a handful of beats when
/// loss stretches the observed gaps.
constexpr double kAlpha = 0.2;

}  // namespace

HeartbeatMonitor::HeartbeatMonitor(MessageBus* bus, HostId host,
                                   const DetectConfig& config)
    : GridService(bus, host, "detect"), config_(config) {}

void HeartbeatMonitor::Watch(HostId host, const Address& heartbeater) {
  Watched w;
  w.address = heartbeater;
  watched_[host] = w;
}

void HeartbeatMonitor::Activate() {
  if (++active_count_ > 1) return;
  ++epoch_;
  const SimTime now = simulator()->Now();
  for (auto& [host, w] : watched_) {
    w.state = State::kAlive;
    w.last_heard = now;
    w.suspect_since = 0.0;
    w.mean_ms = 0.0;
    w.var_ms2 = 0.0;
    w.beats = 0;
    w.confirm_suppressed = false;
    SendControl(w, /*start=*/true);
  }
  if (!check_scheduled_) {
    check_scheduled_ = true;
    simulator()->Schedule(config_.heartbeat_interval_ms / 2.0,
                          [this] { Check(); });
  }
}

void HeartbeatMonitor::Deactivate() {
  if (active_count_ == 0) return;
  if (--active_count_ > 0) return;
  last_deactivate_ms_ = simulator()->Now();
  for (auto& [host, w] : watched_) {
    // Every watched host gets the stop — including confirmed ones. A
    // confirmation can be FALSE (stalled or partitioned, not dead): such
    // a host is still beating and would beat forever without the stop.
    // For a genuinely dead host the transport abandons the retries.
    SendControl(w, /*start=*/false);
  }
}

void HeartbeatMonitor::SendControl(const Watched& w, bool start) {
  // Rides the reliable transport (plain SendTo): start/stop must arrive
  // or a heartbeater would beat forever / never begin.
  (void)SendTo(w.address, std::make_shared<HeartbeatControlPayload>(
                              start, epoch_, config_.heartbeat_interval_ms));
}

double HeartbeatMonitor::SuspectTimeoutMs(const Watched& w) const {
  const double interval = config_.heartbeat_interval_ms;
  if (w.beats < 2) return config_.max_suspect_intervals * interval;
  const double sd = std::sqrt(std::max(w.var_ms2, 0.0));
  return std::clamp(w.mean_ms + config_.phi_k * sd,
                    config_.min_suspect_intervals * interval,
                    config_.max_suspect_intervals * interval);
}

void HeartbeatMonitor::Check() {
  check_scheduled_ = false;
  if (active_count_ == 0) return;  // stop rescheduling: drains the sim
  // The monitor dies with its host: a killed coordinator must not keep
  // scanning (or keep the simulation alive) — the standby takes over.
  if (node_ != nullptr && node_->dead()) return;
  const SimTime now = simulator()->Now();
  size_t unconfirmed = 0;
  for (const auto& [host, w] : watched_) {
    if (w.state != State::kConfirmed) ++unconfirmed;
  }
  for (auto& [host, w] : watched_) {
    if (w.state == State::kConfirmed) continue;
    const double silence = now - w.last_heard;
    if (w.state == State::kAlive) {
      if (silence > SuspectTimeoutMs(w)) {
        w.state = State::kSuspect;
        w.suspect_since = now;
        ++stats_.suspicions_raised;
        GQP_LOG_DEBUG << "detect: host " << host << " suspected at " << now
                      << " after " << silence << "ms of silence";
      }
    }
    if (w.state == State::kSuspect &&
        now - w.suspect_since >=
            config_.confirm_intervals * config_.heartbeat_interval_ms) {
      if (unconfirmed <= 1 && !config_.allow_last_survivor_confirm) {
        // Last-survivor guard: confirming the only remaining evaluator
        // would leave recovery with nowhere to move work. Keep suspecting;
        // either a beat clears it or the query stalls and the harness's
        // termination invariant reports it.
        if (!w.confirm_suppressed) {
          w.confirm_suppressed = true;
          ++stats_.confirms_suppressed;
        }
        continue;
      }
      w.state = State::kConfirmed;
      --unconfirmed;
      ++stats_.failures_confirmed;
      confirm_times_[host] = now;
      GQP_LOG_DEBUG << "detect: host " << host << " confirmed failed at "
                    << now;
      if (on_confirm_) on_confirm_(host);
    }
  }
  check_scheduled_ = true;
  simulator()->Schedule(config_.heartbeat_interval_ms / 2.0,
                        [this] { Check(); });
}

void HeartbeatMonitor::HandleMessage(const Message& msg) {
  const auto* hb = PayloadAs<HeartbeatPayload>(msg.payload);
  if (hb == nullptr) return;
  if (hb->epoch() != epoch_) {
    ++stats_.stale_heartbeats;
    return;
  }
  auto it = watched_.find(hb->host());
  if (it == watched_.end()) return;
  Watched& w = it->second;
  ++stats_.heartbeats_received;

  const SimTime now = simulator()->Now();
  if (w.beats > 0) {
    const double gap = now - w.last_heard;
    if (w.beats == 1) {
      w.mean_ms = gap;
    } else {
      const double d = gap - w.mean_ms;
      w.mean_ms += kAlpha * d;
      w.var_ms2 += kAlpha * (d * d - w.var_ms2);
    }
  }
  w.last_heard = now;
  ++w.beats;

  if (w.state == State::kSuspect) {
    w.state = State::kAlive;
    w.suspect_since = 0.0;
    w.confirm_suppressed = false;
    ++stats_.suspicions_cleared;
    GQP_LOG_DEBUG << "detect: host " << hb->host()
                  << " cleared suspicion at " << now;
  } else if (w.state == State::kConfirmed) {
    // It was never dead — partitioned or stalled. Its old outputs are
    // fenced by the recovery protocol; from here on it is fresh capacity.
    w.state = State::kAlive;
    w.suspect_since = 0.0;
    ++stats_.readmissions;
    GQP_LOG_DEBUG << "detect: host " << hb->host() << " re-admitted at "
                  << now;
    if (on_readmit_) on_readmit_(hb->host());
  }
}

std::optional<SimTime> HeartbeatMonitor::LastConfirmMs(HostId host) const {
  auto it = confirm_times_.find(host);
  if (it == confirm_times_.end()) return std::nullopt;
  return it->second;
}

bool HeartbeatMonitor::ConfirmSuppressed(HostId host) const {
  auto it = watched_.find(host);
  return it != watched_.end() && it->second.confirm_suppressed;
}

}  // namespace gqp
