// Heartbeater: the evaluator-side half of the failure detector. Runs as a
// service ("hb") on every GQES host; once started by the monitor it beats
// at a fixed interval until the node dies, the monitor stops it, or a
// chaos-injected stall silences it (the false-suspicion scenario: alive
// but mute).

#ifndef GRIDQP_DETECT_HEARTBEATER_H_
#define GRIDQP_DETECT_HEARTBEATER_H_

#include <algorithm>

#include "detect/heartbeat.h"
#include "grid/node.h"
#include "rpc/service.h"

namespace gqp {

class Heartbeater : public GridService {
 public:
  /// `monitor` is the coordinator-side HeartbeatMonitor's address.
  Heartbeater(MessageBus* bus, GridNode* node, Address monitor);

  /// Chaos hook: suppress beats (but stay alive and keep processing work)
  /// until the given simulation time. Models a GC pause, swap storm, or
  /// overloaded control path — the detector must not corrupt results when
  /// it wrongly gives up on this host.
  void Stall(SimTime until) { stall_until_ = std::max(stall_until_, until); }

  uint64_t beats_sent() const { return beats_sent_; }
  /// Beats swallowed by an active stall window.
  uint64_t beats_suppressed() const { return beats_suppressed_; }

 protected:
  void HandleMessage(const Message& msg) override;

 private:
  void Tick();

  GridNode* node_;
  Address monitor_;
  bool active_ = false;
  bool tick_scheduled_ = false;
  uint64_t epoch_ = 0;
  uint64_t seq_ = 0;
  double interval_ms_ = 5.0;
  SimTime stall_until_ = 0.0;
  uint64_t beats_sent_ = 0;
  uint64_t beats_suppressed_ = 0;
};

}  // namespace gqp

#endif  // GRIDQP_DETECT_HEARTBEATER_H_
