// HeartbeatMonitor: the coordinator-side half of the failure detector.
// Tracks the inter-arrival statistics of each watched host's heartbeats
// with an exponentially-weighted mean/variance and suspects a host when
// its silence exceeds mean + phi_k standard deviations (clamped to
// [min, max] heartbeat intervals — the φ-accrual idea with a bounded
// detection latency). A suspected host that stays silent for another
// confirm window is confirmed failed and reported to the GDQS through the
// on_confirm callback; a suspected host that beats again is cleared; a
// *confirmed* host that beats again (it was partitioned or stalled, not
// dead) is re-admitted as fresh capacity — its in-flight query state has
// already been fenced and recovered around.

#ifndef GRIDQP_DETECT_MONITOR_H_
#define GRIDQP_DETECT_MONITOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "detect/heartbeat.h"
#include "rpc/service.h"

namespace gqp {

class GridNode;

class HeartbeatMonitor : public GridService {
 public:
  using HostCallback = std::function<void(HostId)>;

  HeartbeatMonitor(MessageBus* bus, HostId host, const DetectConfig& config);

  /// Registers a host to watch. Call before Activate().
  void Watch(HostId host, const Address& heartbeater);

  /// Binds the node the monitor runs on. When that node dies the Check()
  /// timer stops rescheduling — a dead coordinator's monitor must not
  /// keep the simulation alive (the standby's takeover owns the grid from
  /// then on, D14).
  void BindNode(GridNode* node) { node_ = node; }

  /// Reference-counted: the first Activate() opens a new watch epoch
  /// (commanding every heartbeater to start beating) and the matching
  /// last Deactivate() stops them. The GDQS activates per in-flight query.
  void Activate();
  void Deactivate();
  bool active() const { return active_count_ > 0; }

  /// Invoked on confirmed failure (wired to Gdqs::ReportNodeFailure).
  void set_on_confirm(HostCallback fn) { on_confirm_ = std::move(fn); }
  /// Invoked when a confirmed-failed host is heard from again.
  void set_on_readmit(HostCallback fn) { on_readmit_ = std::move(fn); }

  /// Most recent confirmation time for a host, across all epochs.
  std::optional<SimTime> LastConfirmMs(HostId host) const;
  /// True if the last-survivor guard ever withheld confirming this host.
  bool ConfirmSuppressed(HostId host) const;
  /// Time of the last final Deactivate() (0 if still active / never).
  SimTime last_deactivate_ms() const { return last_deactivate_ms_; }

  /// Current watch epoch (the standby mirrors it so its takeover can stop
  /// heartbeaters started by the dead primary's monitor).
  uint64_t epoch() const { return epoch_; }

  double MaxDetectionLatencyMs() const {
    return config_.MaxDetectionLatencyMs();
  }
  const DetectConfig& config() const { return config_; }
  const DetectStats& stats() const { return stats_; }

 protected:
  void HandleMessage(const Message& msg) override;

 private:
  enum class State { kAlive, kSuspect, kConfirmed };
  struct Watched {
    Address address;
    State state = State::kAlive;
    SimTime last_heard = 0.0;
    SimTime suspect_since = 0.0;
    /// EWMA of heartbeat inter-arrival times (and its variance).
    double mean_ms = 0.0;
    double var_ms2 = 0.0;
    uint64_t beats = 0;
    bool confirm_suppressed = false;
  };

  void Check();
  double SuspectTimeoutMs(const Watched& w) const;
  void SendControl(const Watched& w, bool start);

  DetectConfig config_;
  /// Node hosting this monitor (null: assumed immortal, legacy setups).
  GridNode* node_ = nullptr;
  /// std::map: deterministic iteration order for Check() and Activate().
  std::map<HostId, Watched> watched_;
  /// Confirmation history, preserved across epochs (detection-latency
  /// invariants read it after the run).
  std::map<HostId, SimTime> confirm_times_;
  int active_count_ = 0;
  uint64_t epoch_ = 0;
  bool check_scheduled_ = false;
  SimTime last_deactivate_ms_ = 0.0;
  HostCallback on_confirm_;
  HostCallback on_readmit_;
  DetectStats stats_;
};

}  // namespace gqp

#endif  // GRIDQP_DETECT_MONITOR_H_
